open Util

(* ------------------------------------------------------------------ *)
(* Thread-safe write-once cell. Wakers registered with [on_fill] run on the
   filler's domain (or immediately on the caller's if already full); fiber
   code therefore only ever uses it through [fiber_await], which turns the
   callback into a mailbox re-enqueue on the fiber's home domain. *)

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a

  type 'a t = { mu : Mutex.t; cond : Condition.t; mutable st : 'a state }

  let create () = { mu = Mutex.create (); cond = Condition.create (); st = Empty [] }

  let fill iv v =
    Mutex.lock iv.mu;
    match iv.st with
    | Full _ ->
      Mutex.unlock iv.mu;
      invalid_arg "Runtime.Ivar: filled twice"
    | Empty ws ->
      iv.st <- Full v;
      Condition.broadcast iv.cond;
      Mutex.unlock iv.mu;
      (* callbacks run outside the lock: they may take other locks *)
      List.iter (fun w -> w v) (List.rev ws)

  let peek iv =
    Mutex.lock iv.mu;
    let r = match iv.st with Full v -> Some v | Empty _ -> None in
    Mutex.unlock iv.mu;
    r

  let on_fill iv w =
    Mutex.lock iv.mu;
    match iv.st with
    | Full v ->
      Mutex.unlock iv.mu;
      w v
    | Empty ws ->
      iv.st <- Empty (w :: ws);
      Mutex.unlock iv.mu

  let read_block iv =
    Mutex.lock iv.mu;
    let rec wait () =
      match iv.st with
      | Full v ->
        Mutex.unlock iv.mu;
        v
      | Empty _ ->
        Condition.wait iv.cond iv.mu;
        wait ()
    in
    wait ()
end

(* ------------------------------------------------------------------ *)

type outcome = {
  result : (Value.t, string) result;
  latency_us : float;
  containers_touched : int;
  abort_cause : Obs.Abort.cause option;
  snapshot : int option;
      (* the frozen epoch a read-only root executed against; [None] for
         ordinary OCC transactions *)
}

type job = unit -> unit

(* Mailbox traffic is typed so a thief can tell relocatable work apart:
   [Root] is an admitted root transaction, parameterized over the executor
   that actually runs it — work stealing and cost routing rebind it. [Job]
   is internal traffic (fiber resumptions, 2PC votes and acks, forwarding
   hops, snapshots), which is never stolen: it must run on the exact domain
   it was addressed to. *)
type msg = Job of job | Root of (exec -> unit)

and exec = {
  eid : int;
  mb : msg Mailbox.t;
  mutable busy_s : float;  (* owning domain only; read via a snapshot job *)
  (* Dynamic-scheduling signals. Atomics because peers read (and the
     router writes [qdepth_ewma]) concurrently; all are advisory — a stale
     read skews a routing score, never correctness. *)
  qdepth_ewma : float Atomic.t;  (* EWMA of mailbox depth, router-refreshed *)
  busy_frac : float Atomic.t;  (* owner-published busy fraction per window *)
  mean_job_us : float Atomic.t;  (* owner-published EWMA of message cost *)
  steals_in : int Atomic.t;  (* roots this domain stole from peers *)
  steals_out : int Atomic.t;  (* roots peers stole from this mailbox *)
  routed_by_cost : int Atomic.t;  (* roots the cost router placed here off-home *)
  sheds : int Atomic.t;  (* admission refusals against this mailbox *)
}

(* Group-commit WAL sink (Silo epoch durability; DESIGN.md §8). Root fibers
   append epoch-tagged redo entries under [wmu]; a dedicated flusher domain
   coalesces everything up to a safe epoch boundary into one buffered write
   and one flush per tick, then wakes the epoch's waiters. *)
type wal_sink = {
  log : Wal.t;  (* flusher domain only, after [start] *)
  wmu : Mutex.t;
  mutable pending : (int * Wal.entry) list;  (* epoch-tagged, newest first *)
  inflight : (int, int) Hashtbl.t;
      (* epoch -> commits decided but not yet appended; holds the flush
         boundary below any epoch that could still produce an entry *)
  mutable flushed_epoch : int;
  mutable waiters : (int * unit Ivar.t) list;  (* shared ivar per epoch *)
  mutable stop : bool;
  mutable flusher : unit Domain.t option;
  tick_s : float;
}

(* Mutable placement (DESIGN.md §11): the bootstrap entry stays immutable
   (name, type, catalog — the logical reactor), while the physical home is
   an atomic the migration protocol flips. Every routing decision reads
   [rhome]; nothing may cache it across a suspension point. *)
type place = {
  re : Reactdb.Bootstrap.entry;
  rhome : int Atomic.t;
}

(* One in-progress migration: roots registered after the mark ([rgen] >
   [mg_cutoff]) that target the migrating reactor park here as closures and
   are replayed against the new placement at the flip. Pre-mark roots
   proceed against the old home; the drain waits for all of them. *)
type mig = {
  mg_cutoff : int;
  mutable mg_parked : (unit -> unit) list;  (* newest first *)
}

type t = {
  cfg : Reactdb.Config.t;
  execs : exec array;
  reactors : (string, place) Hashtbl.t;
  entries : Reactdb.Bootstrap.entry list;
  table_owner : (int, string * string) Hashtbl.t;
      (* table uid -> (reactor, table); read-only after bootstrap *)
  steal : bool;
  epoch_len : float;
  wal : wal_sink option;
  chaos : Chaos.t;
  txn_counter : int Atomic.t;
  committed : int Atomic.t;
  aborted : int Atomic.t;
  ab_user : int Atomic.t;
  ab_validation : int Atomic.t;
  ab_dangerous : int Atomic.t;
  ab_timeout : int Atomic.t;
  ab_overload : int Atomic.t;
  fatal : int Atomic.t;
  fatal_mu : Mutex.t;
  mutable fatal_msgs : string list;
  epoch : int Atomic.t;
  t0 : float;
  rr : int Atomic.t;
  (* Snapshot-read state (DESIGN.md §10). [smu] is a leaf lock guarding the
     two registries; never taken while holding another lock. *)
  snap_enabled : bool Atomic.t;
  smu : Mutex.t;
  snap_live : (int, int) Hashtbl.t;  (* snapshot epoch -> live readers *)
  commit_inflight : (int, int) Hashtbl.t;
      (* epoch -> RW roots past their body but with installs possibly still
         in flight; holds the snapshot boundary below any epoch that could
         still produce an install *)
  n_ro_commits : int Atomic.t;
  auto_seq : int Atomic.t;  (* Config.Auto morphs resolved sequential *)
  auto_par : int Atomic.t;  (* Config.Auto morphs resolved parallel *)
  submitted : int Atomic.t;
  completed : int Atomic.t;
  (* Live-reconfiguration state (DESIGN.md §11). [mig_gen] is the placement
     generation: bumped at each migration mark, stamped into every root at
     registration. [mig_inflight] counts live roots by generation parity —
     migrations are serialized ([mig_admin] held across mark/drain/flip), so
     at most two generations are ever live and parity disambiguates.
     [mig_active] is the fast-path gate: when false (no migration anywhere),
     placement reads skip [mig_mu] entirely; sequential consistency of
     OCaml atomics guarantees a root registered after a mark observes it
     true. [mig_mu] is a leaf lock guarding the stub table and parked
     lists. *)
  mig_admin : Mutex.t;
  mig_mu : Mutex.t;
  mig_active : bool Atomic.t;
  mig_gen : int Atomic.t;
  mig_inflight : int Atomic.t array;  (* length 2, indexed by gen parity *)
  migrating : (string, mig) Hashtbl.t;
  placement_epoch : int Atomic.t;
  n_migrations : int Atomic.t;
  mig_pause_last_us : float Atomic.t;
  mutable domains : unit Domain.t array;
  mutable obs : Obs.Collector.t option;
      (* lifecycle tracing sink; slot [c] only ever written by container
         [c]'s home domain, so recording needs no locks *)
}

let record_fatal db e =
  Atomic.incr db.fatal;
  Mutex.lock db.fatal_mu;
  db.fatal_msgs <- Printexc.to_string e :: db.fatal_msgs;
  Mutex.unlock db.fatal_mu

(* ------------------------------------------------------------------ *)
(* Per-domain fiber scheduler. A fiber is any mailbox job run under the
   [Suspend] handler; suspension registers a waker that re-enqueues the
   one-shot continuation on the fiber's home domain. Plain [Condition]
   blocking would deadlock here (domain A waiting on a reply from B while B
   waits on a reply from A); suspending keeps every domain draining its
   mailbox, which is what guarantees progress. *)

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let run_fiber db ex job =
  let open Effect.Deep in
  match_with job ()
    {
      retc = (fun () -> ());
      (* Procedure and commit paths catch their own exceptions; anything
         arriving here is a runtime bug. Record it and keep the domain
         alive. *)
      exnc = (fun e -> record_fatal db e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun v ->
                    Mailbox.push ex.mb (Job (fun () -> continue k v))))
          | _ -> None);
    }

let run_msg db ex = function
  | Job j -> run_fiber db ex j
  | Root r -> run_fiber db ex (fun () -> r ex)

(* Work stealing: an idle domain raids the deepest peer mailbox for [Root]
   messages (DESIGN.md §8 — internal traffic is never relocatable). The
   first stolen root runs immediately; the rest land on the thief's own
   mailbox in one batched push, where they stay stealable, so a large haul
   keeps rebalancing.

   Depth threshold: a victim with a near-empty queue is about to drain it
   anyway — migrating those messages buys nothing and costs a mailbox
   round trip plus a re-pinned commit each. Only queues at least this deep
   are worth raiding. *)
let min_steal_depth = 4

let try_steal db ex =
  let best = ref None and bestq = ref (min_steal_depth - 1) in
  Array.iter
    (fun px ->
      if px.eid <> ex.eid then begin
        let q = Mailbox.length px.mb in
        if q > !bestq then begin
          bestq := q;
          best := Some px
        end
      end)
    db.execs;
  match !best with
  | None -> None
  | Some victim -> (
    match
      Mailbox.steal_half victim.mb
        ~stealable:(function Root _ -> true | Job _ -> false)
    with
    | [] -> None
    | first :: rest ->
      let n = 1 + List.length rest in
      ignore (Atomic.fetch_and_add victim.steals_out n);
      ignore (Atomic.fetch_and_add ex.steals_in n);
      (match rest with
      | [] -> ()
      | _ -> (
        (* own mailbox can only be closed after quiescence, when no root
           can remain anywhere to steal; run inline if it somehow is *)
        try Mailbox.push_many ex.mb rest
        with Mailbox.Closed -> List.iter (run_msg db ex) rest));
      Some first)

(* Busy-fraction publication window: long enough to smooth per-message
   noise, short enough that the cost router sees load shifts quickly. *)
let busy_window_s = 0.005

let domain_loop db ex =
  let win_start = ref (Unix.gettimeofday ()) in
  let win_busy = ref 0. in
  let publish now =
    let el = now -. !win_start in
    if el >= busy_window_s then begin
      Atomic.set ex.busy_frac (Float.min 1. (!win_busy /. el));
      win_start := now;
      win_busy := 0.
    end
  in
  let run msg =
    (* Chaos: an unresponsive executor domain — everything queued behind
       this mailbox waits out the stall. One branch when chaos is off. *)
    Chaos.inject_wall db.chaos Chaos.Stall_domain;
    let t_run = Unix.gettimeofday () in
    run_msg db ex msg;
    let t_done = Unix.gettimeofday () in
    let d = t_done -. t_run in
    ex.busy_s <- ex.busy_s +. d;
    win_busy := !win_busy +. d;
    let m = Atomic.get ex.mean_job_us in
    Atomic.set ex.mean_job_us ((0.9 *. m) +. (0.1 *. d *. 1e6));
    publish t_done
  in
  if not db.steal then begin
    (* Classic loop: park in [pop_wait] while empty. *)
    let rec loop () =
      match Mailbox.pop_wait ex.mb with
      | None -> ()
      | Some msg ->
        run msg;
        loop ()
    in
    loop ()
  end
  else begin
    (* Stealing domains poll instead of parking ([Condition] has no timed
       wait): drain own mailbox first, then attempt one steal, then back
       off exponentially to 1 ms while everything stays dry. Exits once the
       own mailbox is closed and drained, like [pop_wait] would. *)
    let rec loop idle_s =
      match Mailbox.try_pop ex.mb with
      | Some msg ->
        run msg;
        loop 2e-5
      | None ->
        if Mailbox.is_closed ex.mb then ()
        else (
          match try_steal db ex with
          | Some msg ->
            run msg;
            loop 2e-5
          | None ->
            publish (Unix.gettimeofday ());
            Unix.sleepf idle_s;
            loop (Float.min (idle_s *. 2.) 1e-3))
    in
    loop 2e-5
  end

(* Await inside a fiber: free if resolved, otherwise suspend until filled. *)
let fiber_await (iv : 'a Ivar.t) : 'a =
  match Ivar.peek iv with
  | Some v -> v
  | None -> Effect.perform (Suspend (fun waker -> Ivar.on_fill iv waker))

(* ------------------------------------------------------------------ *)
(* Root transaction state. The [Occ.Txn.t] context is shared by all of a
   root's sub-transactions, which may execute concurrently on different
   domains; [rmu] serializes every procedure body of the root and is
   released across all suspension points, so it is never held by a blocked
   fiber — each fiber locks only its own root's mutex and never while
   holding another, hence no hold-and-wait and no deadlock. *)

type abort_class =
  | Ab_user
  | Ab_conflict
  | Ab_validation
  | Ab_dangerous
  | Ab_timeout

let classify_exn = function
  | Occ.Txn.Abort m -> Some (Ab_user, m)
  | Occ.Txn.Conflict m -> Some (Ab_conflict, m)
  | Reactor.Dangerous_call m -> Some (Ab_dangerous, m)
  | Obs.Abort.Timed_out m -> Some (Ab_timeout, m)
  | _ -> None

let bucket_counter db = function
  | Ab_user -> db.ab_user
  | Ab_conflict | Ab_validation -> db.ab_validation
  | Ab_dangerous -> db.ab_dangerous
  | Ab_timeout -> db.ab_timeout

let obs_kind_of_class = function
  | Ab_user -> Obs.Abort.User
  | Ab_conflict -> Obs.Abort.Conflict
  | Ab_validation -> Obs.Abort.Internal (* refined by fail_reason when known *)
  | Ab_dangerous -> Obs.Abort.Dangerous
  | Ab_timeout -> Obs.Abort.Timeout

let obs_kind_of_fail = function
  | Occ.Commit.Lock_busy -> Obs.Abort.Lock_busy
  | Occ.Commit.Stale_read -> Obs.Abort.Stale_read
  | Occ.Commit.Node_changed -> Obs.Abort.Node_changed
  | Occ.Commit.Key_exists -> Obs.Abort.Key_exists

(* Every lifecycle timestamp — submit, phase boundaries, completion — must
   come from this one function: floats at the microsecond scale (~1e15)
   quantize at ~0.25 us, and mixing grids (e.g. subtracting raw seconds and
   then scaling) makes phase sums drift past the measured latency. On a
   single grid the boundary values telescope, so sum(phases) <= latency. *)
let now_us () = Unix.gettimeofday () *. 1e6

type subresult = (Value.t, exn) result

type sub = { siv : subresult Ivar.t }

type root = {
  txn : Occ.Txn.t;
  rmu : Mutex.t;
  active_set : (string, unit) Hashtbl.t;
  tr : Obs.Trace.t; (* lifecycle trace; Obs.Trace.none when no collector *)
  deadline_us : float;
      (* absolute wall-clock deadline on the [now_us] grid; [infinity] when
         the root has no deadline, which keeps every check a float compare
         with no clock read *)
  mutable doomed : (abort_class * string) option;
      (* a sub-transaction aborted: the root may not commit even if
         application code swallowed the exception (§2.2.3) *)
  rsnapshot : int option;
      (* read-only root: the frozen snapshot epoch its reads resolve
         against; [None] for ordinary OCC roots *)
  rgen : int;
      (* placement generation stamped at registration ([submit]); a root
         with [rgen] <= a migration's cutoff may keep using the old home —
         the drain waits for it — while later roots park at the stub *)
}

let deadline_expired root =
  root.deadline_us < Float.infinity && now_us () > root.deadline_us

(* Deadline checks sit at phase boundaries only — dequeue, sub-call start,
   resume after an await, post-sync, commit entry, 2PC prepare — never
   inside application code, so an expired deadline always surfaces through
   the same typed-abort unwinding as any other abort (children awaited,
   active-set cleaned, locks released). *)
let check_deadline root ~where =
  if deadline_expired root then
    raise (Obs.Abort.Timed_out ("deadline expired " ^ where))

type frame = {
  froot : root;
  fentry : Reactdb.Bootstrap.entry;
  fhome : int;  (* the frame's resolved container — stable for the frame's
                   lifetime by the drain argument (§11): a flip only happens
                   after every root allowed at the old home completed *)
  fex : exec;
  fpath : bool; (* on the root's critical path (root fiber), like the
                   simulator's [on_root_path] *)
  mutable children : sub list;
}

let reactor_place db name =
  match Hashtbl.find_opt db.reactors name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Runtime: unknown reactor %S" name)

(* ------------------------------------------------------------------ *)
(* Placement resolution under migration. [register_gen] stamps a root with
   the current generation and registers it in the parity-indexed inflight
   counter; the increment-recheck-retry dance closes the race with a
   concurrent mark (a root must never hold a slot of a generation it did
   not read). [resolve_home] answers "which container may this root use for
   [reactor] right now?" — [None] means the reactor is mid-migration and
   the root is post-mark: the caller must park at the stub and will be
   replayed (against the new home) at the flip. *)

let register_gen db =
  let rec go () =
    let g = Atomic.get db.mig_gen in
    Atomic.incr db.mig_inflight.(g land 1);
    if Atomic.get db.mig_gen <> g then begin
      Atomic.decr db.mig_inflight.(g land 1);
      go ()
    end
    else g
  in
  go ()

let deregister_gen db g = Atomic.decr db.mig_inflight.(g land 1)

let resolve_home db ~rgen (p : place) =
  if not (Atomic.get db.mig_active) then Some (Atomic.get p.rhome)
  else begin
    Mutex.lock db.mig_mu;
    let r =
      match Hashtbl.find_opt db.migrating p.re.Reactdb.Bootstrap.bs_name with
      | Some m when rgen > m.mg_cutoff -> None
      | _ -> Some (Atomic.get p.rhome)
    in
    Mutex.unlock db.mig_mu;
    r
  end

(* Park [k] at [reactor]'s stub; falls back to running it immediately if
   the migration flipped between the caller's [resolve_home] and here (the
   closure re-reads the new placement itself). *)
let park_at_stub db reactor k =
  Mutex.lock db.mig_mu;
  match Hashtbl.find_opt db.migrating reactor with
  | Some m ->
    m.mg_parked <- k :: m.mg_parked;
    Mutex.unlock db.mig_mu
  | None ->
    Mutex.unlock db.mig_mu;
    k ()

(* Await a child with the root mutex released: the child itself needs [rmu]
   to run. On the root path the blocked window (suspension until the waker
   fires, plus re-acquiring [rmu]) is stamped into the lifecycle trace. *)
let await_sub root ~on_root_path sub =
  match Ivar.peek sub.siv with
  | Some r -> r
  | None ->
    let timed = on_root_path && Obs.Trace.enabled root.tr in
    let t0 = if timed then now_us () else 0. in
    Mutex.unlock root.rmu;
    let r = fiber_await sub.siv in
    Mutex.lock root.rmu;
    if timed then Obs.Trace.add root.tr Obs.Phase.Suspend_wait (now_us () -. t0);
    r

(* Mirrors the simulator's execution semantics (Database.run_procedure /
   do_call) minus cost charging: self-calls and same-container calls are
   inlined, cross-container calls ship to the owning domain and return a
   real future, and implicit synchronization awaits every child before the
   frame completes. Caller holds [root.rmu]. *)
let rec run_procedure db ~root ~entry ~home ~ex ~on_root_path ~proc_name ~args =
  let procfn = Reactor.find_proc entry.Reactdb.Bootstrap.bs_rtype proc_name in
  let frame =
    { froot = root; fentry = entry; fhome = home; fex = ex;
      fpath = on_root_path; children = [] }
  in
  let ctx =
    {
      Reactor.db =
        Query.Exec.make_ctx ?snapshot:root.rsnapshot ~txn:root.txn
          ~container:home
          ~catalog:entry.Reactdb.Bootstrap.bs_catalog
          ~charge:(fun _ _ -> ())
          ~work:(fun _ -> ())
          ();
      self = entry.Reactdb.Bootstrap.bs_name;
      call = (fun ~reactor ~proc ~args -> do_call db frame ~reactor ~proc ~args);
      collect =
        (fun futures ->
          (* Fork–join barrier, mirroring the simulator: consume every
             future before raising anything (resolved ivars are peeked for
             free, so completion order doesn't matter), then re-raise the
             first non-deadline error in list order. Raising only after
             all siblings completed means a timed-out collect never
             unwinds with sub-transactions still mutating callee state; a
             deadline expiry seen by any per-future resume check is the
             root's one budget, so it is reported as the collect-boundary
             check firing. *)
          let results =
            List.map
              (fun f -> try Ok (f.Reactor.get ()) with e -> Error e)
              futures
          in
          (match
             List.find_opt
               (function
                 | Error (Obs.Abort.Timed_out _) | Ok _ -> false
                 | Error _ -> true)
               results
           with
          | Some (Error e) -> raise e
          | _ -> ());
          if
            List.exists
              (function Error _ -> true | Ok _ -> false)
              results
          then raise (Obs.Abort.Timed_out "deadline expired at collect boundary");
          check_deadline root ~where:"at collect boundary";
          List.map
            (function Ok v -> v | Error _ -> assert false)
            results);
    }
  in
  let result = try Ok (procfn ctx args) with e -> Error e in
  let first_err = ref (match result with Error e -> Some e | Ok _ -> None) in
  List.iter
    (fun sub ->
      match await_sub root ~on_root_path:frame.fpath sub with
      | Ok _ -> ()
      | Error e -> if !first_err = None then first_err := Some e)
    (List.rev frame.children);
  (* Implicit sync done: every child has completed, so raising here cannot
     leave a sub-transaction mutating the shared context. *)
  if !first_err = None && frame.children <> [] && deadline_expired root then
    first_err := Some (Obs.Abort.Timed_out "deadline expired after implicit sync");
  match !first_err with
  | Some e -> raise e
  | None -> (match result with Ok v -> v | Error _ -> assert false)

and do_call db frame ~reactor ~proc ~args =
  let root = frame.froot in
  if reactor = frame.fentry.Reactdb.Bootstrap.bs_name then begin
    (* Self-call: inlined synchronously (§2.2.4). *)
    let v =
      run_procedure db ~root ~entry:frame.fentry ~home:frame.fhome
        ~ex:frame.fex ~on_root_path:frame.fpath ~proc_name:proc ~args
    in
    { Reactor.get = (fun () -> v) }
  end
  else begin
    let tplace = reactor_place db reactor in
    let tentry = tplace.re in
    if Hashtbl.mem root.active_set reactor then
      raise
        (Reactor.Dangerous_call
           (Printf.sprintf "dangerous call structure: reactor %s already active"
              reactor));
    (* Placement gate: a post-mark root may not touch a migrating reactor —
       its sub-call parks at the stub and ships after the flip. Pre-mark
       roots resolve the (old) home and proceed; the drain waits for them. *)
    let resolved = resolve_home db ~rgen:root.rgen tplace in
    match resolved with
    | Some h when h = frame.fhome ->
      (* Same container = same domain: run inline, no messaging. *)
      Hashtbl.add root.active_set reactor ();
      let finally () = Hashtbl.remove root.active_set reactor in
      let v =
        try
          run_procedure db ~root ~entry:tentry ~home:h ~ex:frame.fex
            ~on_root_path:frame.fpath ~proc_name:proc ~args
        with e ->
          finally ();
          raise e
      in
      finally ();
      { Reactor.get = (fun () -> v) }
    | _ ->
      (* Cross-container (or parked): ship the body to the owning domain.
         The child job blocks on [rmu] before touching any shared
         transaction state; the holder is always a running (never
         suspended) fiber, so the wait is finite. The home is re-read at
         dispatch time — for a parked call that is after the flip. *)
      Hashtbl.add root.active_set reactor ();
      let iv = Ivar.create () in
      let ship () =
        let rex = db.execs.(Atomic.get tplace.rhome) in
        Mailbox.push rex.mb
          (Job
             (fun () ->
            (* Chaos: the shipped sub-call stalls before it starts executing
               on the destination domain. *)
            Chaos.inject_wall db.chaos Chaos.Delay_delivery;
            Mutex.lock root.rmu;
            let res =
              try
                check_deadline root ~where:"at sub-transaction start";
                Ok
                  (run_procedure db ~root ~entry:tentry ~home:rex.eid ~ex:rex
                     ~on_root_path:false ~proc_name:proc ~args)
              with e -> Error e
            in
            (match res with
            | Error e -> (
              match classify_exn e with
              | Some km -> if root.doomed = None then root.doomed <- Some km
              | None -> ())
            | Ok _ -> ());
            Hashtbl.remove root.active_set reactor;
            Mutex.unlock root.rmu;
            Ivar.fill iv res))
      in
      (match resolved with
      | Some _ -> ship ()
      | None -> park_at_stub db reactor ship);
      let sub = { siv = iv } in
      frame.children <- sub :: frame.children;
      {
        Reactor.get =
          (fun () ->
            match await_sub root ~on_root_path:frame.fpath sub with
            | Ok v ->
              (* Resumed after a (possibly long) suspension: re-check the
                 budget before letting the body continue. Raises inside the
                 procedure body, so the implicit sync still awaits every
                 sibling before the frame unwinds. *)
              check_deadline root ~where:"on resume after sub-transaction";
              v
            | Error e -> raise e);
      }
  end

(* ------------------------------------------------------------------ *)
(* Silo epochs on the wall clock. Only monotonicity matters for TID
   correctness ([compute_tid] takes the max with observed TIDs), so the
   epoch is advanced opportunistically at root starts with a CAS — a lost
   race just means the next root advances it. *)

let default_epoch_len_s = 0.04

let maybe_advance_epoch db =
  let target = 1 + int_of_float ((Unix.gettimeofday () -. db.t0) /. db.epoch_len) in
  let cur = Atomic.get db.epoch in
  if target > cur then ignore (Atomic.compare_and_set db.epoch cur target)

(* ------------------------------------------------------------------ *)
(* Snapshot epochs (multi-version reads; DESIGN.md §10). The inflight
   registry lower-bounds the epoch of any install still in flight: a RW
   root registers the current epoch strictly before its commit protocol
   and deregisters after installs complete, and [compute_tid] can only
   yield that epoch or higher (observed/overwritten TIDs never exceed the
   epoch current at commit entry). A snapshot frozen at
   S = min(epoch, min inflight) - 1 therefore names only epochs whose
   installs have all landed — an immutable, consistent prefix. *)

let commit_register db =
  Mutex.lock db.smu;
  let e = Atomic.get db.epoch in
  Hashtbl.replace db.commit_inflight e
    (1 + Option.value ~default:0 (Hashtbl.find_opt db.commit_inflight e));
  Mutex.unlock db.smu;
  e

let commit_deregister db e =
  Mutex.lock db.smu;
  (match Hashtbl.find_opt db.commit_inflight e with
  | Some n when n > 1 -> Hashtbl.replace db.commit_inflight e (n - 1)
  | _ -> Hashtbl.remove db.commit_inflight e);
  Mutex.unlock db.smu

let safe_snapshot_locked db =
  let s = ref (Atomic.get db.epoch - 1) in
  Hashtbl.iter (fun e _ -> if e - 1 < !s then s := e - 1) db.commit_inflight;
  Stdlib.max 0 !s

let safe_snapshot_epoch db =
  Mutex.lock db.smu;
  let s = safe_snapshot_locked db in
  Mutex.unlock db.smu;
  s

let acquire_snapshot db =
  Mutex.lock db.smu;
  let s = safe_snapshot_locked db in
  Hashtbl.replace db.snap_live s
    (1 + Option.value ~default:0 (Hashtbl.find_opt db.snap_live s));
  Mutex.unlock db.smu;
  s

let release_snapshot db s =
  Mutex.lock db.smu;
  (match Hashtbl.find_opt db.snap_live s with
  | Some n when n > 1 -> Hashtbl.replace db.snap_live s (n - 1)
  | Some _ -> Hashtbl.remove db.snap_live s
  | None -> ());
  Mutex.unlock db.smu

(* Horizon for version-chain trimming: no current or future snapshot can
   fall below it. Issued snapshots are nondecreasing over time — every
   registration carries the then-current epoch, which is at least the
   inflight minimum, so the minimum never moves backwards. *)
let gc_horizon db =
  Mutex.lock db.smu;
  let nxt = safe_snapshot_locked db in
  let h = Hashtbl.fold (fun e _ acc -> Stdlib.min e acc) db.snap_live nxt in
  Mutex.unlock db.smu;
  h

let install_horizon db =
  if Atomic.get db.snap_enabled then Some (gc_horizon db) else None

(* Config.Auto morph heuristic: resolve a root to its parallel formulation
   only when at least half the domains have idle capacity to absorb the
   fan-out — the runtime mirror of the simulator's idle-executor rule, read
   from the published busy fractions and live queue depths. *)
let auto_parallel_ok db =
  let n = Array.length db.execs in
  let busy = ref 0 in
  Array.iter
    (fun ex ->
      if Atomic.get ex.busy_frac > 0.5 || Mailbox.length ex.mb > 1 then
        incr busy)
    db.execs;
  2 * !busy < n

(* ------------------------------------------------------------------ *)
(* Group-commit WAL sink. The epoch rule (DESIGN.md §8): a redo entry is
   tagged with the epoch read at registration time, strictly before its
   commit decision; the flusher may only flush-and-release through boundary
   [b] once no registered-but-unappended commit with tag <= b remains. By
   epoch monotonicity, any commit registering after the flusher read the
   epoch gets a tag beyond the boundary, and Silo's conflict ordering makes
   the tag monotone along dependency edges — so every flushed prefix is
   closed under depends-on and replays to a consistent state. *)

(* Register a commit attempt; returns its epoch tag. Reading the epoch
   under [wmu] is what orders registration against the flusher's own epoch
   read (also under [wmu]). *)
let sink_register db s =
  Mutex.lock s.wmu;
  let e = Atomic.get db.epoch in
  Hashtbl.replace s.inflight e
    (1 + Option.value ~default:0 (Hashtbl.find_opt s.inflight e));
  Mutex.unlock s.wmu;
  e

let deregister_locked s e =
  match Hashtbl.find_opt s.inflight e with
  | Some n when n > 1 -> Hashtbl.replace s.inflight e (n - 1)
  | _ -> Hashtbl.remove s.inflight e

(* The attempt aborted (or died): just release the boundary hold. *)
let sink_cancel s ~epoch =
  Mutex.lock s.wmu;
  deregister_locked s epoch;
  Mutex.unlock s.wmu

(* The attempt committed: queue its redo entry and return the epoch's
   shared flush ivar for the fiber to await. *)
let sink_append s ~epoch entry =
  Mutex.lock s.wmu;
  deregister_locked s epoch;
  s.pending <- (epoch, entry) :: s.pending;
  let iv =
    match List.assoc_opt epoch s.waiters with
    | Some iv -> iv
    | None ->
      let iv = Ivar.create () in
      s.waiters <- (epoch, iv) :: s.waiters;
      iv
  in
  Mutex.unlock s.wmu;
  iv

let flusher_loop db s =
  let rec loop () =
    Unix.sleepf s.tick_s;
    (* Epochs must advance even when no root starts (quiet periods would
       otherwise pin the flush boundary forever). *)
    maybe_advance_epoch db;
    Mutex.lock s.wmu;
    let stop = s.stop in
    let bound = ref (if stop then max_int else Atomic.get db.epoch - 1) in
    Hashtbl.iter (fun e _n -> if e - 1 < !bound then bound := e - 1) s.inflight;
    let ready, later = List.partition (fun (e, _) -> e <= !bound) s.pending in
    s.pending <- later;
    let woken, still = List.partition (fun (e, _) -> e <= !bound) s.waiters in
    s.waiters <- still;
    if !bound > s.flushed_epoch then s.flushed_epoch <- !bound;
    Mutex.unlock s.wmu;
    if ready <> [] then begin
      (* The group commit: the whole boundary's worth of entries in one
         buffered write and one flush. Entries are appended in arbitrary
         order — replay sorts by TID. A failing log device degrades
         durability, not liveness: record it, still release the waiters. *)
      try
        Wal.append_many s.log (List.rev_map snd ready);
        Wal.flush s.log
      with Wal.Io_error m -> record_fatal db (Failure m)
    end;
    List.iter (fun (_, iv) -> Ivar.fill iv ()) woken;
    if not stop then loop ()
  in
  loop ()

(* After-images come from the transaction's private buffers, captured
   before the commit protocol runs: update rows are the buffered arrays,
   insert records are still locked (lock held from creation) so no later
   committer can swap their data pointer, delete keys are immutable. *)
let wal_writes db txn =
  List.map
    (fun e ->
      let reactor, table =
        match
          Hashtbl.find_opt db.table_owner e.Occ.Txn.wtable.Storage.Table.uid
        with
        | Some rt -> rt
        | None -> ("?", e.Occ.Txn.wtable.Storage.Table.schema.Storage.Schema.sname)
      in
      match e.Occ.Txn.kind with
      | Occ.Txn.Update row -> Wal.Put { reactor; table; row }
      | Occ.Txn.Insert ->
        Wal.Put { reactor; table; row = e.Occ.Txn.wrec.Storage.Record.data }
      | Occ.Txn.Delete -> Wal.Del { reactor; table; key = e.Occ.Txn.wkey })
    (Occ.Txn.all_writes txn)

(* ------------------------------------------------------------------ *)
(* Commit protocols. Runs on the root's fiber with [rmu] released — all
   children have completed by now, so the transaction context is quiescent;
   the mailbox and ivar mutexes give the coordinator happens-before edges
   to every participant's writes. Each container's prepare/install/release
   executes on the domain that owns it, preserving data ownership. *)

(* Typed commit failures: [C_fail] carries the validation verdict,
   [C_internal] means a guarded commit step died on an exception (recorded
   fatal), [C_timeout] is a participant refusing to prepare past the root's
   deadline. *)
type commit_err =
  | C_fail of Occ.Commit.fail_reason
  | C_internal
  | C_timeout

(* [coord] is the domain the root's fiber is physically running on — its
   home unless the root was stolen or cost-routed. Each participant's
   prepare/install/release still executes on the domain owning that
   container; [coord] only decides which participant (if any) is inlined. *)
let two_phase db root ~coord containers ~epoch =
  let remote c f =
    let iv = Ivar.create () in
    Mailbox.push db.execs.(c).mb (Job (fun () -> Ivar.fill iv (f ())));
    iv
  in
  (* One participant's prepare: refuse outright when the root's deadline
     has already passed (no locks taken — the coordinator treats the vote
     like any abort vote and rolls the others back), otherwise validate.
     The chaos stall fires after a successful prepare, i.e. with this
     participant's write locks held — the worst place to lose time. *)
  let prepare_vote c () =
    if deadline_expired root then Error C_timeout
    else begin
      let r = Occ.Commit.prepare root.txn ~container:c in
      if Result.is_ok r then Chaos.inject_wall db.chaos Chaos.Stall_prepare;
      Result.map_error (fun fr -> C_fail fr) r
    end
  in
  (* An exception out of a commit step would leave the coordinator waiting
     forever; degrade to an abort vote / recorded fatal instead. *)
  let guard_vote f () =
    try f ()
    with e -> record_fatal db e; Error C_internal
  in
  let guard_ack f () = try f () with e -> record_fatal db e in
  let timed = Obs.Trace.enabled root.tr in
  let t_val = if timed then now_us () else 0. in
  (* Phase 1: validate with locks everywhere. *)
  let prepares =
    List.map
      (fun c ->
        if c = coord then (c, `Done (prepare_vote c ()))
        else (c, `Pending (remote c (guard_vote (prepare_vote c)))))
      containers
  in
  let resolved =
    List.map
      (fun (c, r) ->
        match r with `Done v -> (c, v) | `Pending iv -> (c, fiber_await iv))
      prepares
  in
  if timed then Obs.Trace.add root.tr Obs.Phase.Validation (now_us () -. t_val);
  let t_dec = if timed then now_us () else 0. in
  let finish r =
    if timed then Obs.Trace.add root.tr Obs.Phase.Commit (now_us () -. t_dec);
    r
  in
  if List.for_all (fun (_, v) -> Result.is_ok v) resolved then begin
    let tid = Occ.Commit.compute_tid root.txn ~epoch in
    let horizon = install_horizon db in
    (* Phase 2: install. *)
    let acks =
      List.map
        (fun c ->
          if c = coord then begin
            Occ.Commit.install ?horizon root.txn ~container:c ~tid;
            None
          end
          else
            Some
              (remote c
                 (guard_ack (fun () ->
                      Occ.Commit.install ?horizon root.txn ~container:c ~tid))))
        containers
    in
    List.iter (function Some iv -> fiber_await iv | None -> ()) acks;
    finish (Ok tid)
  end
  else begin
    (* Phase 2: roll back every prepared participant. *)
    let acks =
      List.filter_map
        (fun (c, v) ->
          if Result.is_error v then None
          else if c = coord then begin
            Occ.Commit.release root.txn ~container:c;
            None
          end
          else
            Some
              (remote c
                 (guard_ack (fun () -> Occ.Commit.release root.txn ~container:c))))
        resolved
    in
    List.iter (fun iv -> fiber_await iv) acks;
    let reason =
      List.find_map
        (fun (_, v) -> match v with Error r -> Some r | Ok () -> None)
        resolved
    in
    finish (Error (Option.value reason ~default:C_internal))
  end

(* Commit coordinated from [run_eid], the domain the root's fiber runs on.
   [epoch] is the root's registered commit epoch (see [commit_register]) —
   using it, rather than re-reading the clock, keeps the inflight registry
   a true lower bound on install epochs. Returns the Silo TID on success
   (0 for an empty write/read set). *)
let do_commit db root ~run_eid ~epoch =
  match Occ.Txn.containers root.txn with
  | [] -> Ok 0
  | [ c ] when c = run_eid ->
    (* commit_single, unrolled so validation and install land in their own
       trace phases. *)
    let timed = Obs.Trace.enabled root.tr in
    let t0 = if timed then now_us () else 0. in
    (match Occ.Commit.prepare root.txn ~container:c with
    | Error r ->
      if timed then Obs.Trace.add root.tr Obs.Phase.Validation (now_us () -. t0);
      Error (C_fail r)
    | Ok () ->
      if timed then Obs.Trace.add root.tr Obs.Phase.Validation (now_us () -. t0);
      let t1 = if timed then now_us () else 0. in
      let tid = Occ.Commit.compute_tid root.txn ~epoch in
      Occ.Commit.install ?horizon:(install_horizon db) root.txn ~container:c
        ~tid;
      if timed then Obs.Trace.add root.tr Obs.Phase.Commit (now_us () -. t1);
      Ok tid)
  | [ c ] ->
    (* Stolen or cost-routed single-container root: the body ran off-home,
       so the whole prepare/compute-TID/install re-pins to the owning
       domain as one message — container-local structural access stays
       owner-serialized at the price of a single round trip. *)
    let timed = Obs.Trace.enabled root.tr in
    let t0 = if timed then now_us () else 0. in
    let iv = Ivar.create () in
    Mailbox.push db.execs.(c).mb
      (Job
         (fun () ->
           Ivar.fill iv
             (try
                if deadline_expired root then (Error C_timeout, 0.)
                else
                  match Occ.Commit.prepare root.txn ~container:c with
                  | Error r -> (Error (C_fail r), 0.)
                  | Ok () ->
                    Chaos.inject_wall db.chaos Chaos.Stall_prepare;
                    let ti = if timed then now_us () else 0. in
                    let tid = Occ.Commit.compute_tid root.txn ~epoch in
                    Occ.Commit.install ?horizon:(install_horizon db) root.txn
                      ~container:c ~tid;
                    (Ok tid, if timed then now_us () -. ti else 0.)
              with e ->
                record_fatal db e;
                (Error C_internal, 0.))));
    let r, commit_us = fiber_await iv in
    if timed then begin
      (* Messaging and owner-queue residence count toward validation, the
         install span toward commit — same attribution as 2PC. *)
      let total = now_us () -. t0 in
      Obs.Trace.add root.tr Obs.Phase.Validation
        (Float.max 0. (total -. commit_us));
      Obs.Trace.add root.tr Obs.Phase.Commit commit_us
    end;
    r
  | containers -> two_phase db root ~coord:run_eid containers ~epoch

(* ------------------------------------------------------------------ *)
(* Root execution: one [Root] mailbox message, run by whichever domain
   dequeued (or stole) it — [run_ex]. The body executes on [run_ex]; the
   commit protocol re-pins every container's prepare/install to its owning
   domain. Guaranteed to call [k] and bump [completed] exactly once —
   quiescence depends on it. *)

let exec_root db ~reactor ~proc ~args ~ro ~retry ~rgen ~t_submit ~deadline_us
    ~k (run_ex : exec) =
  (* Chaos: the root dispatch message stalls before execution begins. *)
  Chaos.inject_wall db.chaos Chaos.Delay_delivery;
  maybe_advance_epoch db;
  let place = reactor_place db reactor in
  let entry = place.re in
  (* Re-read the home at execution start: a parked root replayed after a
     flip must run against the new placement. Stable from here on — a
     subsequent flip waits for this root (its generation is pre-mark
     relative to any later migration). *)
  let home = Atomic.get place.rhome in
  let ex = run_ex in
  let txn = Occ.Txn.create ~id:(1 + Atomic.fetch_and_add db.txn_counter 1) in
  let tr =
    match db.obs with Some c -> Obs.Collector.trace c | None -> Obs.Trace.none
  in
  let rsnapshot = if ro then Some (acquire_snapshot db) else None in
  let root =
    { txn; rmu = Mutex.create (); active_set = Hashtbl.create 8; tr;
      deadline_us; doomed = None; rsnapshot; rgen }
  in
  let timed = Obs.Trace.enabled tr in
  let t_body = if timed then now_us () else 0. in
  (* Queue wait: submit → this job running on the home domain, including
     any round-robin forwarding hop and mailbox residence. *)
  if timed then
    Obs.Trace.add tr Obs.Phase.Queue_wait (t_body -. t_submit);
  Mutex.lock root.rmu;
  Hashtbl.add root.active_set reactor ();
  let res =
    try
      (* Dequeue boundary: a root whose whole budget went to queueing
         aborts before touching any record. *)
      check_deadline root ~where:"before execution";
      let v =
        run_procedure db ~root ~entry ~home ~ex ~on_root_path:true
          ~proc_name:proc ~args
      in
      match root.doomed with Some km -> Error (`Aborted km) | None -> Ok v
    with e -> Error (`Fatal e)
  in
  Hashtbl.remove root.active_set reactor;
  Mutex.unlock root.rmu;
  (* Exec = body span minus the root's suspended windows (stamped by
     await_sub while the body ran). *)
  if timed then
    Obs.Trace.add tr Obs.Phase.Exec
      (now_us () -. t_body -. Obs.Trace.get tr Obs.Phase.Suspend_wait);
  let verdict =
    match res with
    | Ok v when root.rsnapshot <> None ->
      (* Read-only snapshot root: the result is already final. No read
         set was tracked and nothing was written, so there is no commit
         protocol — no validation, no locks, no 2PC, no WAL — and hence
         nothing that could abort it. *)
      Ok v
    | Ok _ when deadline_expired root ->
      (* Commit entry: nothing is prepared yet, so expiring here just drops
         the read/write sets — no locks to release. *)
      Error (Some Ab_timeout, "deadline expired before commit", Obs.Abort.Timeout)
    | Ok v -> (
      (* Durable mode: capture after-images and register against the flush
         boundary before the commit decision (see the epoch rule above). *)
      let wal_prep =
        match db.wal with
        | None -> None
        | Some s -> (
          match wal_writes db txn with
          | [] -> None
          | writes -> Some (s, writes, sink_register db s))
      in
      (* Register the commit epoch before the protocol starts and release
         it once installs have landed (or the attempt aborted), so snapshot
         acquisition never freezes an epoch with installs still in
         flight. *)
      let ce = commit_register db in
      let cres =
        try `C (do_commit db root ~run_eid:ex.eid ~epoch:ce)
        with e ->
          record_fatal db e;
          `F (Printexc.to_string e)
      in
      commit_deregister db ce;
      (match (cres, wal_prep) with
      | _, None -> ()
      | `C (Ok tid), Some (s, writes, etag) ->
        let iv =
          sink_append s ~epoch:etag
            { Wal.le_txn = Occ.Txn.id txn; le_tid = tid; le_writes = writes }
        in
        let tf = if timed then now_us () else 0. in
        fiber_await iv;
        if timed then Obs.Trace.add tr Obs.Phase.Flush_wait (now_us () -. tf)
      | _, Some (s, _, etag) -> sink_cancel s ~epoch:etag);
      match cres with
      | `C (Ok _tid) -> Ok v
      | `C (Error (C_fail fr)) ->
        Error (Some Ab_validation, Occ.Commit.fail_message fr, obs_kind_of_fail fr)
      | `C (Error C_internal) ->
        Error
          ( Some Ab_validation,
            "validation failed (2pc): internal vote error",
            Obs.Abort.Internal )
      | `C (Error C_timeout) ->
        Error
          ( Some Ab_timeout,
            "deadline expired during 2pc prepare",
            Obs.Abort.Timeout )
      | `F m -> Error (None, "internal commit error: " ^ m, Obs.Abort.Internal))
    | Error (`Aborted (kc, m)) -> Error (Some kc, m, obs_kind_of_class kc)
    | Error (`Fatal e) -> (
      match classify_exn e with
      | Some (kc, m) -> Error (Some kc, m, obs_kind_of_class kc)
      | None ->
        record_fatal db e;
        Error
          (None, "internal error: " ^ Printexc.to_string e, Obs.Abort.Internal))
  in
  (match root.rsnapshot with
  | Some s -> release_snapshot db s
  | None -> ());
  (match verdict with
  | Ok _ ->
    Atomic.incr db.committed;
    if root.rsnapshot <> None then Atomic.incr db.n_ro_commits
  | Error (kc, _, _) ->
    Atomic.incr db.aborted;
    (match kc with Some kc -> Atomic.incr (bucket_counter db kc) | None -> ()));
  let latency_us = now_us () -. t_submit in
  let participants = Stdlib.max 1 (List.length (Occ.Txn.containers txn)) in
  let abort_cause =
    match verdict with
    | Ok _ -> None
    | Error (_, _, kind) -> Some (Obs.Abort.cause ~participants ~retry kind)
  in
  (match db.obs with
  | None -> ()
  | Some c -> (
    (* Slot ownership follows physical execution: this message runs on
       [ex]'s domain, so it records into slot [ex.eid] — with stealing or
       cost routing that may differ from the reactor's home container. *)
    match abort_cause with
    | None ->
      Obs.Collector.record_commit c ~container:ex.eid ~participants ~retry
        ~readonly:(root.rsnapshot <> None) ~latency_us tr
    | Some cause ->
      Obs.Collector.record_abort c ~container:ex.eid ~latency_us ~cause tr));
  let out =
    {
      result = (match verdict with Ok v -> Ok v | Error (_, m, _) -> Error m);
      latency_us;
      containers_touched = List.length (Occ.Txn.containers txn);
      abort_cause;
      snapshot = root.rsnapshot;
    }
  in
  (try k out with e -> record_fatal db e);
  Atomic.incr db.completed

(* ------------------------------------------------------------------ *)
(* Cost router. Scores each candidate domain as the §2.4 cost-model latency
   of the root's fork–join shape when its body runs there — a leaf at home,
   or a node at [c] with one synchronous child at home standing for the
   re-pinned commit round trip — plus live load signals: EWMA queue depth
   times the domain's mean per-message service time (expected drain ahead
   of us), the published busy fraction, and recent shed pressure. Argmin
   wins; the home domain wins ties, so an idle system degenerates to
   affinity routing. *)

let route_costs = Costmodel.uniform_costs ~cs:2. ~cr:2.

let note_qdepth ex =
  let q = float_of_int (Mailbox.length ex.mb) in
  let ew = Atomic.get ex.qdepth_ewma in
  Atomic.set ex.qdepth_ewma ((0.8 *. ew) +. (0.2 *. q))

let choose_cost db ~home =
  let n = Array.length db.execs in
  if n = 1 then 0
  else begin
    (* body estimate: the home domain's live mean service time *)
    let body = Float.max 1. (Atomic.get db.execs.(home).mean_job_us) in
    let submitted = float_of_int (1 + Atomic.get db.submitted) in
    let score c =
      let ex = db.execs.(c) in
      note_qdepth ex;
      let svc = Float.max 1. (Atomic.get ex.mean_job_us) in
      let shape =
        if c = home then Costmodel.leaf ~at:home body
        else
          Costmodel.node ~at:c ~p_seq:body
            ~sync_seq:[ Costmodel.leaf ~at:home (0.2 *. body) ]
            ()
      in
      let model = Costmodel.latency route_costs shape in
      let backlog = Atomic.get ex.qdepth_ewma *. svc in
      let busy = Atomic.get ex.busy_frac *. svc in
      let shed_pressure =
        float_of_int (Atomic.get ex.sheds) /. submitted *. svc *. 4.
      in
      model +. backlog +. busy +. shed_pressure
    in
    let best = ref home and best_s = ref (score home) in
    for c = 0 to n - 1 do
      if c <> home then begin
        let s = score c in
        if s < !best_s then begin
          best := c;
          best_s := s
        end
      end
    done;
    !best
  end

let submit ?(retry = 0) ?deadline_us db ~reactor ~proc ~args ~k =
  let place = reactor_place db reactor in
  let rt = place.re.Reactdb.Bootstrap.bs_rtype in
  (* Config.Auto: resolve a declared morph pair per root from live load —
     parallel when idle capacity can absorb the fan-out, else sequential.
     Generators emit the sequential name under [Auto]. *)
  let proc =
    if db.cfg.Reactdb.Config.morph <> Reactdb.Config.Auto then proc
    else
      match Reactor.morph_target rt proc with
      | Some par when auto_parallel_ok db ->
        Atomic.incr db.auto_par;
        par
      | Some _ ->
        Atomic.incr db.auto_seq;
        proc
      | None -> proc
  in
  let ro = Atomic.get db.snap_enabled && Reactor.proc_readonly rt proc in
  Atomic.incr db.submitted;
  (* Placement-generation registration: the matching deregistration rides
     the continuation, so a migration drain observes exactly the roots
     whose outcome is still pending. *)
  let rgen = register_gen db in
  let k out =
    deregister_gen db rgen;
    k out
  in
  let t_submit = now_us () in
  let abs_deadline =
    match deadline_us with
    | Some d -> t_submit +. d
    | None -> Float.infinity
  in
  let job =
    exec_root db ~reactor ~proc ~args ~ro ~retry ~rgen ~t_submit
      ~deadline_us:abs_deadline ~k
  in
  (* Dispatch against a resolved home — immediately when the target is not
     mid-migration, otherwise replayed by the flip. Stub traffic counts as
     admitted (the stub is its admission queue), so the replay uses
     unconditional pushes; fresh dispatches go through [try_push]. *)
  let dispatch ~replayed home =
    let ingress, by_cost =
      if ro || replayed then (home, false)
      else
        match db.cfg.Reactdb.Config.router with
        | Reactdb.Config.Affinity -> (home, false)
        | Reactdb.Config.Round_robin ->
          (Atomic.fetch_and_add db.rr 1 mod Array.length db.execs, false)
        | Reactdb.Config.Cost ->
          let c = choose_cost db ~home in
          (c, c <> home)
    in
    (* Admission control happens here and only here: root ingress goes
       through [try_push] against the (possibly bounded) ingress mailbox.
       Everything the runtime pushes on its own behalf — forwarding hops,
       suspended-fiber resumptions, 2PC traffic, stub replays — uses
       unconditional [push]: shedding those would wedge an in-flight
       transaction instead of refusing a new one. *)
    let accepted =
      if replayed then begin
        (if ro then
           Mailbox.push db.execs.(home).mb (Job (fun () -> job db.execs.(home)))
         else Mailbox.push db.execs.(home).mb (Root job));
        true
      end
      else if ro then
        (* Read-only snapshot roots are home-pinned: pushed as [Job] they
           are never stolen or cost-routed, so a snapshot body only ever
           walks version chains on the domain that owns the records — reads
           cannot race a concurrent install. Admission control still
           applies. *)
        Mailbox.try_push db.execs.(home).mb
          (Job (fun () -> job db.execs.(home)))
      else if ingress = home || by_cost then
        (* Direct admission; a cost-routed off-home root executes at the
           ingress domain and re-pins its commit. *)
        Mailbox.try_push db.execs.(ingress).mb (Root job)
      else
        (* Misrouted round-robin ingress pays a forwarding hop to the owner
           — the locality cost the affinity router avoids. The hop itself is
           internal traffic; the forwarded root becomes stealable again once
           it reaches the home mailbox. The owner is re-read at hop time so
           a flip between ingress and hop can't strand the root on a stale
           home. *)
        Mailbox.try_push db.execs.(ingress).mb
          (Job
             (fun () ->
               Mailbox.push db.execs.(Atomic.get place.rhome).mb (Root job)))
    in
    if accepted && by_cost then Atomic.incr db.execs.(ingress).routed_by_cost;
    if not accepted then begin
      Atomic.incr db.execs.(ingress).sheds;
      (* Shed at admission: the attempt never reaches a domain, so the
         outcome is synthesized on the submitter's thread. Obs collector
         slots are owned by home domains, so no lifecycle record is written
         for sheds — the typed counters still account for them exactly. *)
      Atomic.incr db.aborted;
      Atomic.incr db.ab_overload;
      let out =
        {
          result = Error "overloaded: admission queue full";
          latency_us = now_us () -. t_submit;
          containers_touched = 0;
          abort_cause =
            Some (Obs.Abort.cause ~participants:1 ~retry Obs.Abort.Overloaded);
          snapshot = None;
        }
      in
      (try k out with e -> record_fatal db e);
      Atomic.incr db.completed
    end
  in
  match resolve_home db ~rgen place with
  | Some home -> dispatch ~replayed:false home
  | None ->
    park_at_stub db reactor (fun () ->
        dispatch ~replayed:true (Atomic.get place.rhome))

let exec_txn ?deadline_us db ~reactor ~proc ~args =
  let iv = Ivar.create () in
  submit ?deadline_us db ~reactor ~proc ~args ~k:(fun out -> Ivar.fill iv out);
  Ivar.read_block iv

(* Read [completed] before [submitted]: both monotone, every submit precedes
   its completion, so equal reads in this order imply a true fixpoint (as
   long as the caller isn't racing its own new submissions). *)
let quiesce db =
  let rec loop () =
    let c = Atomic.get db.completed in
    let s = Atomic.get db.submitted in
    if c <> s then begin
      Unix.sleepf 2e-4;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Online reactor migration (DESIGN.md §11): mark → drain → handoff →
   flip → replay. Call from an admin thread (a test driver, the
   autoscaler loop, an operator shell), never from inside a fiber — the
   drain blocks until every pre-mark root completes.

   Mark: install the forwarding stub and bump the placement generation
   under [mig_mu]. From this instant, roots and sub-calls registered after
   the mark that target [reactor] park at the stub; everything registered
   before keeps the old home.

   Drain: wait until the pre-mark generation's inflight count hits zero.
   This is global, not per-reactor — coarser than strictly necessary, but
   it makes the flip's safety argument one line: nothing that may legally
   touch the old placement still runs. Stragglers are bounded by the PR 5
   deadline machinery: a root that outlives its budget aborts through the
   normal typed unwinding and releases its slot.

   Handoff: in this shared-memory runtime the storage slice — record
   versions, secondary indexes, snapshot version chains — is the reactor's
   catalog object, reachable from the immutable bootstrap entry. Ownership
   is by routing, not by copying: after the drain nobody executes against
   the slice, so the handoff is the placement flip itself. (A distributed
   implementation would serialize the catalog here; the protocol shape is
   the same.) Snapshot readers are unaffected: version chains live in the
   records, and post-flip readers resolve them from the new domain.

   Flip: write the new home (all routers — affinity, cost, round-robin
   forwarding hops, 2PC participant resolution — read it through
   [rhome]), bump the placement epoch, log a durable [Wal.Migrate] record
   through the group-commit sink, then replay the parked stub traffic
   against the new placement. *)

let migrate db ~reactor ~dst =
  let place = reactor_place db reactor in
  if dst < 0 || dst >= Array.length db.execs then
    invalid_arg (Printf.sprintf "Runtime.migrate: no container %d" dst);
  Mutex.lock db.mig_admin;
  let src = Atomic.get place.rhome in
  if src = dst then begin
    Mutex.unlock db.mig_admin;
    0.
  end
  else begin
    let t0 = now_us () in
    (* mark *)
    Mutex.lock db.mig_mu;
    Atomic.set db.mig_active true;
    let cutoff = Atomic.fetch_and_add db.mig_gen 1 in
    Hashtbl.replace db.migrating reactor { mg_cutoff = cutoff; mg_parked = [] };
    Mutex.unlock db.mig_mu;
    (* drain: serialized migrations mean at most two generations are live,
       so the pre-mark generation is alone in its parity slot *)
    while Atomic.get db.mig_inflight.(cutoff land 1) > 0 do
      Unix.sleepf 1e-4
    done;
    (* durable placement record, ordered by the same epoch-tagged sink as
       commit records; TID = (epoch, migration ordinal) is strictly
       increasing across migrations, so recovery's last-wins fold is
       deterministic *)
    let seq = 1 + Atomic.fetch_and_add db.n_migrations 1 in
    let flush_iv =
      match db.wal with
      | None -> None
      | Some s ->
        let etag = sink_register db s in
        Some
          (sink_append s ~epoch:etag
             {
               Wal.le_txn = -seq;
               le_tid = Storage.Record.tid_make ~epoch:etag ~seq;
               le_writes = [ Wal.Migrate { reactor; dst } ];
             })
    in
    (* flip: new home first, then retire the stub — a racer passing the
       gate after the stub is gone reads the new placement *)
    Atomic.set place.rhome dst;
    Atomic.incr db.placement_epoch;
    Mutex.lock db.mig_mu;
    let parked =
      match Hashtbl.find_opt db.migrating reactor with
      | Some m ->
        Hashtbl.remove db.migrating reactor;
        List.rev m.mg_parked
      | None -> []
    in
    if Hashtbl.length db.migrating = 0 then Atomic.set db.mig_active false;
    Mutex.unlock db.mig_mu;
    let pause = now_us () -. t0 in
    Atomic.set db.mig_pause_last_us pause;
    (* replay the queued stub traffic against the new placement *)
    List.iter (fun f -> f ()) parked;
    Mutex.unlock db.mig_admin;
    (* durability of the placement record is confirmed off the pause path *)
    (match flush_iv with Some iv -> Ivar.read_block iv | None -> ());
    pause
  end

let n_migrations db = Atomic.get db.n_migrations
let placement_epoch db = Atomic.get db.placement_epoch
let migration_pause_last_us db = Atomic.get db.mig_pause_last_us

let placements db =
  List.map
    (fun e ->
      let name = e.Reactdb.Bootstrap.bs_name in
      (name, Atomic.get (reactor_place db name).rhome))
    db.entries

let reactors_on db c =
  List.filter_map
    (fun (name, home) -> if home = c then Some name else None)
    (placements db)

(* ------------------------------------------------------------------ *)

let start ?(chaos = Chaos.none) ?mailbox_cap ?(steal = false) ?wal
    ?(epoch_len_s = default_epoch_len_s) ?(group_tick_s = 0.001) decl cfg =
  let entries, table_owner = Reactdb.Bootstrap.build decl cfg in
  let n = Reactdb.Config.n_containers cfg in
  let execs =
    Array.init n (fun eid ->
        {
          eid;
          mb = Mailbox.create ?capacity:mailbox_cap ();
          busy_s = 0.;
          qdepth_ewma = Atomic.make 0.;
          busy_frac = Atomic.make 0.;
          mean_job_us = Atomic.make 0.;
          steals_in = Atomic.make 0;
          steals_out = Atomic.make 0;
          routed_by_cost = Atomic.make 0;
          sheds = Atomic.make 0;
        })
  in
  let reactors = Hashtbl.create 64 in
  List.iter
    (fun e ->
      Hashtbl.add reactors e.Reactdb.Bootstrap.bs_name
        { re = e; rhome = Atomic.make e.Reactdb.Bootstrap.bs_home })
    entries;
  let sink =
    Option.map
      (fun log ->
        {
          log;
          wmu = Mutex.create ();
          pending = [];
          inflight = Hashtbl.create 8;
          flushed_epoch = 0;
          waiters = [];
          stop = false;
          flusher = None;
          tick_s = Float.max 1e-4 group_tick_s;
        })
      wal
  in
  let db =
    {
      cfg;
      execs;
      reactors;
      entries;
      table_owner;
      steal;
      epoch_len = Float.max 1e-4 epoch_len_s;
      wal = sink;
      chaos;
      txn_counter = Atomic.make 0;
      committed = Atomic.make 0;
      aborted = Atomic.make 0;
      ab_user = Atomic.make 0;
      ab_validation = Atomic.make 0;
      ab_dangerous = Atomic.make 0;
      ab_timeout = Atomic.make 0;
      ab_overload = Atomic.make 0;
      fatal = Atomic.make 0;
      fatal_mu = Mutex.create ();
      fatal_msgs = [];
      epoch = Atomic.make 1;
      t0 = Unix.gettimeofday ();
      rr = Atomic.make 0;
      snap_enabled = Atomic.make true;
      smu = Mutex.create ();
      snap_live = Hashtbl.create 8;
      commit_inflight = Hashtbl.create 8;
      n_ro_commits = Atomic.make 0;
      auto_seq = Atomic.make 0;
      auto_par = Atomic.make 0;
      submitted = Atomic.make 0;
      completed = Atomic.make 0;
      mig_admin = Mutex.create ();
      mig_mu = Mutex.create ();
      mig_active = Atomic.make false;
      mig_gen = Atomic.make 0;
      mig_inflight = [| Atomic.make 0; Atomic.make 0 |];
      migrating = Hashtbl.create 4;
      placement_epoch = Atomic.make 0;
      n_migrations = Atomic.make 0;
      mig_pause_last_us = Atomic.make 0.;
      domains = [||];
      obs = None;
    }
  in
  db.domains <-
    Array.map (fun ex -> Domain.spawn (fun () -> domain_loop db ex)) execs;
  (match db.wal with
  | Some s -> s.flusher <- Some (Domain.spawn (fun () -> flusher_loop db s))
  | None -> ());
  db

let shutdown db =
  quiesce db;
  (* Stop the flusher after quiescence: its final pass flushes everything
     still pending (no commit can be inflight any more) and releases any
     remaining waiters before the executor domains are joined. *)
  (match db.wal with
  | Some s ->
    Mutex.lock s.wmu;
    s.stop <- true;
    Mutex.unlock s.wmu;
    (match s.flusher with Some d -> Domain.join d | None -> ());
    s.flusher <- None
  | None -> ());
  Array.iter (fun ex -> Mailbox.close ex.mb) db.execs;
  Array.iter Domain.join db.domains;
  db.domains <- [||]

let n_domains db = Array.length db.execs
let container_of db name = Atomic.get (reactor_place db name).rhome

let catalog_of db name =
  (reactor_place db name).re.Reactdb.Bootstrap.bs_catalog

let catalogs db =
  List.map
    (fun e -> (e.Reactdb.Bootstrap.bs_name, e.Reactdb.Bootstrap.bs_catalog))
    db.entries

let n_committed db = Atomic.get db.committed
let n_aborted db = Atomic.get db.aborted

(* --- snapshot reads --- *)

let set_snapshots db on = Atomic.set db.snap_enabled on
let snapshots_enabled db = Atomic.get db.snap_enabled
let n_readonly_commits db = Atomic.get db.n_ro_commits
let auto_morphs db = (Atomic.get db.auto_seq, Atomic.get db.auto_par)

let aborts_by_reason db =
  List.filter
    (fun (_, n) -> n > 0)
    [
      ("user", Atomic.get db.ab_user);
      ("validation", Atomic.get db.ab_validation);
      ("dangerous-structure", Atomic.get db.ab_dangerous);
      ("timeout", Atomic.get db.ab_timeout);
      ("overloaded", Atomic.get db.ab_overload);
    ]

let attach_obs db c = db.obs <- Some c
let n_fatal db = Atomic.get db.fatal

(* --- dynamic-scheduling observability --- *)

type sched_stat = {
  ss_steals_in : int;
  ss_steals_out : int;
  ss_routed_by_cost : int;
  ss_sheds : int;
  ss_qdepth_ewma : float;
}

let sched_stats db =
  Array.map
    (fun ex ->
      {
        ss_steals_in = Atomic.get ex.steals_in;
        ss_steals_out = Atomic.get ex.steals_out;
        ss_routed_by_cost = Atomic.get ex.routed_by_cost;
        ss_sheds = Atomic.get ex.sheds;
        ss_qdepth_ewma = Atomic.get ex.qdepth_ewma;
      })
    db.execs

let n_steals db =
  Array.fold_left
    (fun a ex -> a + Atomic.get ex.steals_in)
    0 db.execs

(* --- live load signals (autoscaler inputs) --- *)

type load_stat = {
  ld_busy_frac : float;  (* owner-published busy fraction, 5 ms window *)
  ld_qdepth_ewma : float;  (* router-refreshed EWMA of mailbox depth *)
  ld_mailbox : int;  (* instantaneous mailbox length *)
  ld_sheds : int;  (* admission refusals against this mailbox so far *)
}

let load_stats db =
  Array.map
    (fun ex ->
      {
        ld_busy_frac = Atomic.get ex.busy_frac;
        ld_qdepth_ewma = Atomic.get ex.qdepth_ewma;
        ld_mailbox = Mailbox.length ex.mb;
        ld_sheds = Atomic.get ex.sheds;
      })
    db.execs

(* Copy the scheduler counters into the attached collector's slots so they
   ride the versioned report. Call at quiescence, like summarize. *)
let publish_sched_obs db =
  match db.obs with
  | None -> ()
  | Some c ->
    Array.iter
      (fun ex ->
        Obs.Collector.set_sched c ~container:ex.eid
          ~steals_in:(Atomic.get ex.steals_in)
          ~steals_out:(Atomic.get ex.steals_out)
          ~routed_by_cost:(Atomic.get ex.routed_by_cost)
          ~qdepth_ewma:(Atomic.get ex.qdepth_ewma))
      db.execs

let fatal_messages db =
  Mutex.lock db.fatal_mu;
  let m = db.fatal_msgs in
  Mutex.unlock db.fatal_mu;
  m

(* [busy_s] is private to its domain; snapshot it with a mailbox job so the
   read happens on the owner with proper ordering. *)
let busy_times db =
  Array.map
    (fun ex ->
      let iv = Ivar.create () in
      Mailbox.push ex.mb (Job (fun () -> Ivar.fill iv ex.busy_s));
      iv)
    db.execs
  |> Array.map Ivar.read_block

(* ------------------------------------------------------------------ *)

module Load = struct
  type spec = {
    n_workers : int;
    gen : int -> Rng.t -> Workloads.Wl.request;
    warmup_s : float;
    measure_s : float;
    seed : int;
    max_retries : int;
    deadline_us : float option;
    backoff : Backoff.policy option;
    shed_pause_us : float;
  }

  let spec ?(warmup_s = 0.2) ?(measure_s = 1.0) ?(seed = 42) ?(max_retries = 0)
      ?deadline_us ?(backoff = Some Backoff.default) ?(shed_pause_us = 500.)
      ~n_workers gen =
    { n_workers; gen; warmup_s; measure_s; seed; max_retries; deadline_us;
      backoff; shed_pause_us = Float.max 0. shed_pause_us }

  (* Deferred-work timer on its own domain, used for backoff pauses between
     retry attempts and for the post-shed pause — both must not block an
     executor domain nor recurse on the submitter's stack. [Condition] has
     no timed wait in the stdlib, so with items pending the loop polls on a
     0.2 ms quantum; idle, it parks on the condition. *)
  module Timer = struct
    type item = { due : float; thunk : unit -> unit }

    type t = {
      mu : Mutex.t;
      cond : Condition.t;
      mutable items : item list;
      mutable stopped : bool;
      mutable dom : unit Domain.t option;
      on_error : exn -> unit;
    }

    let rec loop t =
      Mutex.lock t.mu;
      if t.items = [] then
        if t.stopped then Mutex.unlock t.mu
        else begin
          Condition.wait t.cond t.mu;
          Mutex.unlock t.mu;
          loop t
        end
      else begin
        let now = Unix.gettimeofday () in
        let due, rest = List.partition (fun i -> i.due <= now) t.items in
        t.items <- rest;
        Mutex.unlock t.mu;
        List.iter (fun i -> try i.thunk () with e -> t.on_error e) due;
        if due = [] then Unix.sleepf 2e-4;
        loop t
      end

    let start ~on_error =
      let t =
        { mu = Mutex.create (); cond = Condition.create (); items = [];
          stopped = false; dom = None; on_error }
      in
      t.dom <- Some (Domain.spawn (fun () -> loop t));
      t

    let after t delay_us thunk =
      let due = Unix.gettimeofday () +. (delay_us *. 1e-6) in
      Mutex.lock t.mu;
      t.items <- { due; thunk } :: t.items;
      Condition.signal t.cond;
      Mutex.unlock t.mu

    (* Drains remaining items before exiting (callers quiesce first, so
       there normally are none). *)
    let stop t =
      Mutex.lock t.mu;
      t.stopped <- true;
      Condition.signal t.cond;
      Mutex.unlock t.mu;
      (match t.dom with Some d -> Domain.join d | None -> ());
      t.dom <- None
  end

  type result = {
    throughput : float;
    committed : int;
    aborted : int;
    retries : int;
    abort_rate : float;
    aborts_by_reason : (string * int) list;
    mean_latency_us : float;
    latency_std_us : float;
    p50_us : float;
    p95_us : float;
    p99_us : float;
    duration_s : float;
    utilizations : float array;
  }

  (* Shared attempt loop: submit [req], resubmitting transient aborts up to
     [max_retries] times with an increasing retry index, then hand the final
     outcome to [k]. Between attempts the worker pauses per the seeded
     backoff policy, parked on the timer domain (an immediate retry would
     re-contend on exactly the state it just lost to). [observe] sees every
     attempt outcome exactly once together with the retry decision made for
     it, so window accounting can attribute both from one measurement-flag
     read. *)
  let rec attempt db ~timer ~backoff ~bseed ~deadline_us ~max_retries ~observe
      ~req ~idx ~k =
    submit ~retry:idx ?deadline_us db ~reactor:req.Workloads.Wl.reactor
      ~proc:req.Workloads.Wl.proc ~args:req.Workloads.Wl.args ~k:(fun out ->
        let will_retry =
          match (out.result, out.abort_cause) with
          | Error _, Some cause ->
            Obs.Abort.transient cause.Obs.Abort.kind && idx < max_retries
          | _ -> false
        in
        observe out ~will_retry;
        if will_retry then begin
          let again () =
            attempt db ~timer ~backoff ~bseed ~deadline_us ~max_retries
              ~observe ~req ~idx:(idx + 1) ~k
          in
          match backoff with
          | None -> again ()
          | Some p ->
            Timer.after timer (Backoff.delay_us p ~seed:bseed ~attempt:(idx + 1))
              again
        end
        else k out)

  (* Per-worker backoff seed: distinct workers draw distinct jitter
     schedules from one run seed, which is what de-synchronizes retry
     stampedes on a contended key. *)
  let worker_seed seed w = seed lxor (w * 0x9e3779b9)

  let busy_snapshot = busy_times

  let run db s =
    let stop = Atomic.make false in
    let measuring = Atomic.make false in
    let live = Atomic.make s.n_workers in
    let n_retries = Atomic.make 0 in
    let committed_w = Atomic.make 0 in
    let aborted_w = Atomic.make 0 in
    let kind_counts = Array.init Obs.Abort.n_kinds (fun _ -> Atomic.make 0) in
    let mu = Mutex.create () in
    let reservoir = Stats.Reservoir.create ~seed:s.seed 8192 in
    let lat = Stats.create () in
    let timer = Timer.start ~on_error:(record_fatal db) in
    (* Window accounting lives here, not in global-counter deltas: one
       [measuring] read attributes the attempt, its latency sample and its
       retry decision to the same side of the window boundary, so the
       identity commits + aborts = logical + retries holds exactly within
       the window — attempts draining after measurement end (sheds,
       timeouts, stragglers) can't be half-counted. *)
    let observe out ~will_retry =
      if Atomic.get measuring then begin
        (match out.result with
        | Ok _ ->
          Atomic.incr committed_w;
          Mutex.lock mu;
          Stats.Reservoir.add reservoir out.latency_us;
          Stats.add lat out.latency_us;
          Mutex.unlock mu
        | Error _ ->
          Atomic.incr aborted_w;
          (match out.abort_cause with
          | Some c ->
            Atomic.incr kind_counts.(Obs.Abort.kind_index c.Obs.Abort.kind)
          | None -> ()));
        if will_retry then Atomic.incr n_retries
      end
    in
    (* Completion-driven virtual client: worker [w]'s callback records the
       finished logical transaction (after any retries) and submits the
       next one. Every chain ends by decrementing [live], including chains
       parked on the timer. *)
    let rec step w rng =
      if Atomic.get stop then Atomic.decr live
      else
        match
          try Some (s.gen w rng)
          with e ->
            record_fatal db e;
            None
        with
        | None -> Atomic.decr live
        | Some req ->
          attempt db ~timer ~backoff:s.backoff ~bseed:(worker_seed s.seed w)
            ~deadline_us:s.deadline_us ~max_retries:s.max_retries ~observe
            ~req ~idx:0
            ~k:(fun out ->
              match out.abort_cause with
              | Some c when c.Obs.Abort.kind = Obs.Abort.Overloaded ->
                (* Shed at admission: pause before offering new work (the
                   backpressure response), and hop through the timer domain
                   — a synchronous resubmit would recurse submit → shed →
                   submit on the saturated mailbox. *)
                Timer.after timer s.shed_pause_us (fun () -> step w rng)
              | _ -> step w rng)
    in
    for w = 0 to s.n_workers - 1 do
      step w (Rng.stream ~seed:s.seed w)
    done;
    Unix.sleepf s.warmup_s;
    let busy0 = busy_snapshot db in
    let t_start = Unix.gettimeofday () in
    Atomic.set measuring true;
    Unix.sleepf s.measure_s;
    Atomic.set measuring false;
    let t_end = Unix.gettimeofday () in
    Atomic.set stop true;
    (* Drain worker chains first (they may still be parked on the timer),
       then the runtime's in-flight roots, then retire the timer. *)
    while Atomic.get live > 0 do
      Unix.sleepf 2e-4
    done;
    quiesce db;
    Timer.stop timer;
    publish_sched_obs db;
    let busy1 = busy_snapshot db in
    let t_drained = Unix.gettimeofday () in
    let window = Float.max 1e-9 (t_end -. t_start) in
    let committed = Atomic.get committed_w and aborted = Atomic.get aborted_w in
    let done_ = committed + aborted in
    {
      throughput = float_of_int committed /. window;
      committed;
      aborted;
      retries = Atomic.get n_retries;
      abort_rate =
        (if done_ = 0 then 0. else float_of_int aborted /. float_of_int done_);
      aborts_by_reason =
        List.filter_map
          (fun k ->
            let n = Atomic.get kind_counts.(Obs.Abort.kind_index k) in
            if n > 0 then Some (Obs.Abort.kind_name k, n) else None)
          Obs.Abort.all_kinds;
      mean_latency_us = Stats.mean lat;
      latency_std_us = Stats.stddev lat;
      p50_us = Stats.Reservoir.percentile reservoir 50.;
      p95_us = Stats.Reservoir.percentile reservoir 95.;
      p99_us = Stats.Reservoir.percentile reservoir 99.;
      duration_s = window;
      utilizations =
        Array.init (Array.length busy0) (fun i ->
            (busy1.(i) -. busy0.(i)) /. Float.max 1e-9 (t_drained -. t_start));
    }

  let run_fixed ?(max_retries = 0) ?deadline_us
      ?(backoff = Some Backoff.default) db ~n_workers ~per_worker ~seed gen =
    let n_retries = Atomic.make 0 in
    let done_ = Atomic.make 0 in
    let total = n_workers * per_worker in
    let timer = Timer.start ~on_error:(record_fatal db) in
    let observe _out ~will_retry = if will_retry then Atomic.incr n_retries in
    let rec step w rng left =
      if left > 0 then
        match
          try Some (gen w rng)
          with e ->
            record_fatal db e;
            None
        with
        | None ->
          (* generator died: account the chain's remaining transactions so
             the drain below still terminates *)
          ignore (Atomic.fetch_and_add done_ left)
        | Some req ->
          attempt db ~timer ~backoff ~bseed:(worker_seed seed w) ~deadline_us
            ~max_retries ~observe ~req ~idx:0
            ~k:(fun out ->
              Atomic.incr done_;
              match out.abort_cause with
              | Some c when c.Obs.Abort.kind = Obs.Abort.Overloaded ->
                Timer.after timer 500. (fun () -> step w rng (left - 1))
              | _ -> step w rng (left - 1))
    in
    for w = 0 to n_workers - 1 do
      step w (Rng.stream ~seed w) per_worker
    done;
    (* [quiesce] alone is not enough: a retry parked on the timer is not
       yet submitted, so submitted = completed can hold mid-transaction.
       Logical completion is the fixpoint that matters. *)
    while Atomic.get done_ < total do
      Unix.sleepf 2e-4
    done;
    quiesce db;
    Timer.stop timer;
    Atomic.get n_retries
end
