open Util

(* ------------------------------------------------------------------ *)
(* Thread-safe write-once cell. Wakers registered with [on_fill] run on the
   filler's domain (or immediately on the caller's if already full); fiber
   code therefore only ever uses it through [fiber_await], which turns the
   callback into a mailbox re-enqueue on the fiber's home domain. *)

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a

  type 'a t = { mu : Mutex.t; cond : Condition.t; mutable st : 'a state }

  let create () = { mu = Mutex.create (); cond = Condition.create (); st = Empty [] }

  let fill iv v =
    Mutex.lock iv.mu;
    match iv.st with
    | Full _ ->
      Mutex.unlock iv.mu;
      invalid_arg "Runtime.Ivar: filled twice"
    | Empty ws ->
      iv.st <- Full v;
      Condition.broadcast iv.cond;
      Mutex.unlock iv.mu;
      (* callbacks run outside the lock: they may take other locks *)
      List.iter (fun w -> w v) (List.rev ws)

  let peek iv =
    Mutex.lock iv.mu;
    let r = match iv.st with Full v -> Some v | Empty _ -> None in
    Mutex.unlock iv.mu;
    r

  let on_fill iv w =
    Mutex.lock iv.mu;
    match iv.st with
    | Full v ->
      Mutex.unlock iv.mu;
      w v
    | Empty ws ->
      iv.st <- Empty (w :: ws);
      Mutex.unlock iv.mu

  let read_block iv =
    Mutex.lock iv.mu;
    let rec wait () =
      match iv.st with
      | Full v ->
        Mutex.unlock iv.mu;
        v
      | Empty _ ->
        Condition.wait iv.cond iv.mu;
        wait ()
    in
    wait ()
end

(* ------------------------------------------------------------------ *)

type outcome = {
  result : (Value.t, string) result;
  latency_us : float;
  containers_touched : int;
  abort_cause : Obs.Abort.cause option;
}

type job = unit -> unit

type exec = {
  eid : int;
  mb : job Mailbox.t;
  mutable busy_s : float;  (* owning domain only; read via a snapshot job *)
}

type t = {
  cfg : Reactdb.Config.t;
  execs : exec array;
  reactors : (string, Reactdb.Bootstrap.entry) Hashtbl.t;
  entries : Reactdb.Bootstrap.entry list;
  chaos : Chaos.t;
  txn_counter : int Atomic.t;
  committed : int Atomic.t;
  aborted : int Atomic.t;
  ab_user : int Atomic.t;
  ab_validation : int Atomic.t;
  ab_dangerous : int Atomic.t;
  ab_timeout : int Atomic.t;
  ab_overload : int Atomic.t;
  fatal : int Atomic.t;
  fatal_mu : Mutex.t;
  mutable fatal_msgs : string list;
  epoch : int Atomic.t;
  t0 : float;
  rr : int Atomic.t;
  submitted : int Atomic.t;
  completed : int Atomic.t;
  mutable domains : unit Domain.t array;
  mutable obs : Obs.Collector.t option;
      (* lifecycle tracing sink; slot [c] only ever written by container
         [c]'s home domain, so recording needs no locks *)
}

let record_fatal db e =
  Atomic.incr db.fatal;
  Mutex.lock db.fatal_mu;
  db.fatal_msgs <- Printexc.to_string e :: db.fatal_msgs;
  Mutex.unlock db.fatal_mu

(* ------------------------------------------------------------------ *)
(* Per-domain fiber scheduler. A fiber is any mailbox job run under the
   [Suspend] handler; suspension registers a waker that re-enqueues the
   one-shot continuation on the fiber's home domain. Plain [Condition]
   blocking would deadlock here (domain A waiting on a reply from B while B
   waits on a reply from A); suspending keeps every domain draining its
   mailbox, which is what guarantees progress. *)

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let run_fiber db ex job =
  let open Effect.Deep in
  match_with job ()
    {
      retc = (fun () -> ());
      (* Procedure and commit paths catch their own exceptions; anything
         arriving here is a runtime bug. Record it and keep the domain
         alive. *)
      exnc = (fun e -> record_fatal db e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun v ->
                    Mailbox.push ex.mb (fun () -> continue k v)))
          | _ -> None);
    }

let domain_loop db ex =
  let rec loop () =
    match Mailbox.pop_wait ex.mb with
    | None -> ()
    | Some job ->
      (* Chaos: an unresponsive executor domain — everything queued behind
         this mailbox waits out the stall. One branch when chaos is off. *)
      Chaos.inject_wall db.chaos Chaos.Stall_domain;
      let t_run = Unix.gettimeofday () in
      run_fiber db ex job;
      ex.busy_s <- ex.busy_s +. (Unix.gettimeofday () -. t_run);
      loop ()
  in
  loop ()

(* Await inside a fiber: free if resolved, otherwise suspend until filled. *)
let fiber_await (iv : 'a Ivar.t) : 'a =
  match Ivar.peek iv with
  | Some v -> v
  | None -> Effect.perform (Suspend (fun waker -> Ivar.on_fill iv waker))

(* ------------------------------------------------------------------ *)
(* Root transaction state. The [Occ.Txn.t] context is shared by all of a
   root's sub-transactions, which may execute concurrently on different
   domains; [rmu] serializes every procedure body of the root and is
   released across all suspension points, so it is never held by a blocked
   fiber — each fiber locks only its own root's mutex and never while
   holding another, hence no hold-and-wait and no deadlock. *)

type abort_class =
  | Ab_user
  | Ab_conflict
  | Ab_validation
  | Ab_dangerous
  | Ab_timeout

let classify_exn = function
  | Occ.Txn.Abort m -> Some (Ab_user, m)
  | Occ.Txn.Conflict m -> Some (Ab_conflict, m)
  | Reactor.Dangerous_call m -> Some (Ab_dangerous, m)
  | Obs.Abort.Timed_out m -> Some (Ab_timeout, m)
  | _ -> None

let bucket_counter db = function
  | Ab_user -> db.ab_user
  | Ab_conflict | Ab_validation -> db.ab_validation
  | Ab_dangerous -> db.ab_dangerous
  | Ab_timeout -> db.ab_timeout

let obs_kind_of_class = function
  | Ab_user -> Obs.Abort.User
  | Ab_conflict -> Obs.Abort.Conflict
  | Ab_validation -> Obs.Abort.Internal (* refined by fail_reason when known *)
  | Ab_dangerous -> Obs.Abort.Dangerous
  | Ab_timeout -> Obs.Abort.Timeout

let obs_kind_of_fail = function
  | Occ.Commit.Lock_busy -> Obs.Abort.Lock_busy
  | Occ.Commit.Stale_read -> Obs.Abort.Stale_read
  | Occ.Commit.Node_changed -> Obs.Abort.Node_changed
  | Occ.Commit.Key_exists -> Obs.Abort.Key_exists

(* Every lifecycle timestamp — submit, phase boundaries, completion — must
   come from this one function: floats at the microsecond scale (~1e15)
   quantize at ~0.25 us, and mixing grids (e.g. subtracting raw seconds and
   then scaling) makes phase sums drift past the measured latency. On a
   single grid the boundary values telescope, so sum(phases) <= latency. *)
let now_us () = Unix.gettimeofday () *. 1e6

type subresult = (Value.t, exn) result

type sub = { siv : subresult Ivar.t }

type root = {
  txn : Occ.Txn.t;
  rmu : Mutex.t;
  active_set : (string, unit) Hashtbl.t;
  tr : Obs.Trace.t; (* lifecycle trace; Obs.Trace.none when no collector *)
  deadline_us : float;
      (* absolute wall-clock deadline on the [now_us] grid; [infinity] when
         the root has no deadline, which keeps every check a float compare
         with no clock read *)
  mutable doomed : (abort_class * string) option;
      (* a sub-transaction aborted: the root may not commit even if
         application code swallowed the exception (§2.2.3) *)
}

let deadline_expired root =
  root.deadline_us < Float.infinity && now_us () > root.deadline_us

(* Deadline checks sit at phase boundaries only — dequeue, sub-call start,
   resume after an await, post-sync, commit entry, 2PC prepare — never
   inside application code, so an expired deadline always surfaces through
   the same typed-abort unwinding as any other abort (children awaited,
   active-set cleaned, locks released). *)
let check_deadline root ~where =
  if deadline_expired root then
    raise (Obs.Abort.Timed_out ("deadline expired " ^ where))

type frame = {
  froot : root;
  fentry : Reactdb.Bootstrap.entry;
  fex : exec;
  fpath : bool; (* on the root's critical path (root fiber), like the
                   simulator's [on_root_path] *)
  mutable children : sub list;
}

let reactor_state db name =
  match Hashtbl.find_opt db.reactors name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Runtime: unknown reactor %S" name)

(* Await a child with the root mutex released: the child itself needs [rmu]
   to run. On the root path the blocked window (suspension until the waker
   fires, plus re-acquiring [rmu]) is stamped into the lifecycle trace. *)
let await_sub root ~on_root_path sub =
  match Ivar.peek sub.siv with
  | Some r -> r
  | None ->
    let timed = on_root_path && Obs.Trace.enabled root.tr in
    let t0 = if timed then now_us () else 0. in
    Mutex.unlock root.rmu;
    let r = fiber_await sub.siv in
    Mutex.lock root.rmu;
    if timed then Obs.Trace.add root.tr Obs.Phase.Suspend_wait (now_us () -. t0);
    r

(* Mirrors the simulator's execution semantics (Database.run_procedure /
   do_call) minus cost charging: self-calls and same-container calls are
   inlined, cross-container calls ship to the owning domain and return a
   real future, and implicit synchronization awaits every child before the
   frame completes. Caller holds [root.rmu]. *)
let rec run_procedure db ~root ~entry ~ex ~on_root_path ~proc_name ~args =
  let procfn = Reactor.find_proc entry.Reactdb.Bootstrap.bs_rtype proc_name in
  let frame =
    { froot = root; fentry = entry; fex = ex; fpath = on_root_path;
      children = [] }
  in
  let ctx =
    {
      Reactor.db =
        Query.Exec.make_ctx ~txn:root.txn
          ~container:entry.Reactdb.Bootstrap.bs_home
          ~catalog:entry.Reactdb.Bootstrap.bs_catalog
          ~charge:(fun _ _ -> ())
          ~work:(fun _ -> ());
      self = entry.Reactdb.Bootstrap.bs_name;
      call = (fun ~reactor ~proc ~args -> do_call db frame ~reactor ~proc ~args);
    }
  in
  let result = try Ok (procfn ctx args) with e -> Error e in
  let first_err = ref (match result with Error e -> Some e | Ok _ -> None) in
  List.iter
    (fun sub ->
      match await_sub root ~on_root_path:frame.fpath sub with
      | Ok _ -> ()
      | Error e -> if !first_err = None then first_err := Some e)
    (List.rev frame.children);
  (* Implicit sync done: every child has completed, so raising here cannot
     leave a sub-transaction mutating the shared context. *)
  if !first_err = None && frame.children <> [] && deadline_expired root then
    first_err := Some (Obs.Abort.Timed_out "deadline expired after implicit sync");
  match !first_err with
  | Some e -> raise e
  | None -> (match result with Ok v -> v | Error _ -> assert false)

and do_call db frame ~reactor ~proc ~args =
  let root = frame.froot in
  if reactor = frame.fentry.Reactdb.Bootstrap.bs_name then begin
    (* Self-call: inlined synchronously (§2.2.4). *)
    let v =
      run_procedure db ~root ~entry:frame.fentry ~ex:frame.fex
        ~on_root_path:frame.fpath ~proc_name:proc ~args
    in
    { Reactor.get = (fun () -> v) }
  end
  else begin
    let tentry = reactor_state db reactor in
    if Hashtbl.mem root.active_set reactor then
      raise
        (Reactor.Dangerous_call
           (Printf.sprintf "dangerous call structure: reactor %s already active"
              reactor));
    if tentry.Reactdb.Bootstrap.bs_home = frame.fentry.Reactdb.Bootstrap.bs_home
    then begin
      (* Same container = same domain: run inline, no migration. *)
      Hashtbl.add root.active_set reactor ();
      let finally () = Hashtbl.remove root.active_set reactor in
      let v =
        try
          run_procedure db ~root ~entry:tentry ~ex:frame.fex
            ~on_root_path:frame.fpath ~proc_name:proc ~args
        with e ->
          finally ();
          raise e
      in
      finally ();
      { Reactor.get = (fun () -> v) }
    end
    else begin
      (* Cross-container: ship the body to the owning domain. The child
         job blocks on [rmu] before touching any shared transaction state;
         the holder is always a running (never suspended) fiber, so the
         wait is finite. *)
      Hashtbl.add root.active_set reactor ();
      let rex = db.execs.(tentry.Reactdb.Bootstrap.bs_home) in
      let iv = Ivar.create () in
      Mailbox.push rex.mb (fun () ->
          (* Chaos: the shipped sub-call stalls before it starts executing
             on the destination domain. *)
          Chaos.inject_wall db.chaos Chaos.Delay_delivery;
          Mutex.lock root.rmu;
          let res =
            try
              check_deadline root ~where:"at sub-transaction start";
              Ok
                (run_procedure db ~root ~entry:tentry ~ex:rex
                   ~on_root_path:false ~proc_name:proc ~args)
            with e -> Error e
          in
          (match res with
          | Error e -> (
            match classify_exn e with
            | Some km -> if root.doomed = None then root.doomed <- Some km
            | None -> ())
          | Ok _ -> ());
          Hashtbl.remove root.active_set reactor;
          Mutex.unlock root.rmu;
          Ivar.fill iv res);
      let sub = { siv = iv } in
      frame.children <- sub :: frame.children;
      {
        Reactor.get =
          (fun () ->
            match await_sub root ~on_root_path:frame.fpath sub with
            | Ok v ->
              (* Resumed after a (possibly long) suspension: re-check the
                 budget before letting the body continue. Raises inside the
                 procedure body, so the implicit sync still awaits every
                 sibling before the frame unwinds. *)
              check_deadline root ~where:"on resume after sub-transaction";
              v
            | Error e -> raise e);
      }
    end
  end

(* ------------------------------------------------------------------ *)
(* Silo epochs on the wall clock. Only monotonicity matters for TID
   correctness ([compute_tid] takes the max with observed TIDs), so the
   epoch is advanced opportunistically at root starts with a CAS — a lost
   race just means the next root advances it. *)

let epoch_len_s = 0.04

let maybe_advance_epoch db =
  let target = 1 + int_of_float ((Unix.gettimeofday () -. db.t0) /. epoch_len_s) in
  let cur = Atomic.get db.epoch in
  if target > cur then ignore (Atomic.compare_and_set db.epoch cur target)

(* ------------------------------------------------------------------ *)
(* Commit protocols. Runs on the root's fiber with [rmu] released — all
   children have completed by now, so the transaction context is quiescent;
   the mailbox and ivar mutexes give the coordinator happens-before edges
   to every participant's writes. Each container's prepare/install/release
   executes on the domain that owns it, preserving data ownership. *)

(* Typed commit failures: [C_fail] carries the validation verdict,
   [C_internal] means a guarded commit step died on an exception (recorded
   fatal), [C_timeout] is a participant refusing to prepare past the root's
   deadline. *)
type commit_err =
  | C_fail of Occ.Commit.fail_reason
  | C_internal
  | C_timeout

let two_phase db root ~home containers ~epoch =
  let remote c f =
    let iv = Ivar.create () in
    Mailbox.push db.execs.(c).mb (fun () -> Ivar.fill iv (f ()));
    iv
  in
  (* One participant's prepare: refuse outright when the root's deadline
     has already passed (no locks taken — the coordinator treats the vote
     like any abort vote and rolls the others back), otherwise validate.
     The chaos stall fires after a successful prepare, i.e. with this
     participant's write locks held — the worst place to lose time. *)
  let prepare_vote c () =
    if deadline_expired root then Error C_timeout
    else begin
      let r = Occ.Commit.prepare root.txn ~container:c in
      if Result.is_ok r then Chaos.inject_wall db.chaos Chaos.Stall_prepare;
      Result.map_error (fun fr -> C_fail fr) r
    end
  in
  (* An exception out of a commit step would leave the coordinator waiting
     forever; degrade to an abort vote / recorded fatal instead. *)
  let guard_vote f () =
    try f ()
    with e -> record_fatal db e; Error C_internal
  in
  let guard_ack f () = try f () with e -> record_fatal db e in
  let timed = Obs.Trace.enabled root.tr in
  let t_val = if timed then now_us () else 0. in
  (* Phase 1: validate with locks everywhere. *)
  let prepares =
    List.map
      (fun c ->
        if c = home then (c, `Done (prepare_vote c ()))
        else (c, `Pending (remote c (guard_vote (prepare_vote c)))))
      containers
  in
  let resolved =
    List.map
      (fun (c, r) ->
        match r with `Done v -> (c, v) | `Pending iv -> (c, fiber_await iv))
      prepares
  in
  if timed then Obs.Trace.add root.tr Obs.Phase.Validation (now_us () -. t_val);
  let t_dec = if timed then now_us () else 0. in
  let finish r =
    if timed then Obs.Trace.add root.tr Obs.Phase.Commit (now_us () -. t_dec);
    r
  in
  if List.for_all (fun (_, v) -> Result.is_ok v) resolved then begin
    let tid = Occ.Commit.compute_tid root.txn ~epoch in
    (* Phase 2: install. *)
    let acks =
      List.map
        (fun c ->
          if c = home then begin
            Occ.Commit.install root.txn ~container:c ~tid;
            None
          end
          else
            Some
              (remote c
                 (guard_ack (fun () ->
                      Occ.Commit.install root.txn ~container:c ~tid))))
        containers
    in
    List.iter (function Some iv -> fiber_await iv | None -> ()) acks;
    finish (Ok ())
  end
  else begin
    (* Phase 2: roll back every prepared participant. *)
    let acks =
      List.filter_map
        (fun (c, v) ->
          if Result.is_error v then None
          else if c = home then begin
            Occ.Commit.release root.txn ~container:c;
            None
          end
          else
            Some
              (remote c
                 (guard_ack (fun () -> Occ.Commit.release root.txn ~container:c))))
        resolved
    in
    List.iter (fun iv -> fiber_await iv) acks;
    let reason =
      List.find_map
        (fun (_, v) -> match v with Error r -> Some r | Ok () -> None)
        resolved
    in
    finish (Error (Option.value reason ~default:C_internal))
  end

let do_commit db root ~home =
  let epoch = Atomic.get db.epoch in
  match Occ.Txn.containers root.txn with
  | [] -> Ok ()
  | [ c ] when c = home ->
    (* commit_single, unrolled so validation and install land in their own
       trace phases. *)
    let timed = Obs.Trace.enabled root.tr in
    let t0 = if timed then now_us () else 0. in
    (match Occ.Commit.prepare root.txn ~container:c with
    | Error r ->
      if timed then Obs.Trace.add root.tr Obs.Phase.Validation (now_us () -. t0);
      Error (C_fail r)
    | Ok () ->
      if timed then Obs.Trace.add root.tr Obs.Phase.Validation (now_us () -. t0);
      let t1 = if timed then now_us () else 0. in
      let tid = Occ.Commit.compute_tid root.txn ~epoch in
      Occ.Commit.install root.txn ~container:c ~tid;
      if timed then Obs.Trace.add root.tr Obs.Phase.Commit (now_us () -. t1);
      Ok ())
  | containers -> two_phase db root ~home containers ~epoch

(* ------------------------------------------------------------------ *)
(* Root execution: one mailbox job on the home domain. Guaranteed to call
   [k] and bump [completed] exactly once — quiescence depends on it. *)

let exec_root db ~reactor ~proc ~args ~retry ~t_submit ~deadline_us ~k () =
  (* Chaos: the root dispatch message stalls before execution begins. *)
  Chaos.inject_wall db.chaos Chaos.Delay_delivery;
  maybe_advance_epoch db;
  let entry = reactor_state db reactor in
  let home = entry.Reactdb.Bootstrap.bs_home in
  let ex = db.execs.(home) in
  let txn = Occ.Txn.create ~id:(1 + Atomic.fetch_and_add db.txn_counter 1) in
  let tr =
    match db.obs with Some c -> Obs.Collector.trace c | None -> Obs.Trace.none
  in
  let root =
    { txn; rmu = Mutex.create (); active_set = Hashtbl.create 8; tr;
      deadline_us; doomed = None }
  in
  let timed = Obs.Trace.enabled tr in
  let t_body = if timed then now_us () else 0. in
  (* Queue wait: submit → this job running on the home domain, including
     any round-robin forwarding hop and mailbox residence. *)
  if timed then
    Obs.Trace.add tr Obs.Phase.Queue_wait (t_body -. t_submit);
  Mutex.lock root.rmu;
  Hashtbl.add root.active_set reactor ();
  let res =
    try
      (* Dequeue boundary: a root whose whole budget went to queueing
         aborts before touching any record. *)
      check_deadline root ~where:"before execution";
      let v =
        run_procedure db ~root ~entry ~ex ~on_root_path:true ~proc_name:proc
          ~args
      in
      match root.doomed with Some km -> Error (`Aborted km) | None -> Ok v
    with e -> Error (`Fatal e)
  in
  Hashtbl.remove root.active_set reactor;
  Mutex.unlock root.rmu;
  (* Exec = body span minus the root's suspended windows (stamped by
     await_sub while the body ran). *)
  if timed then
    Obs.Trace.add tr Obs.Phase.Exec
      (now_us () -. t_body -. Obs.Trace.get tr Obs.Phase.Suspend_wait);
  let verdict =
    match res with
    | Ok _ when deadline_expired root ->
      (* Commit entry: nothing is prepared yet, so expiring here just drops
         the read/write sets — no locks to release. *)
      Error (Some Ab_timeout, "deadline expired before commit", Obs.Abort.Timeout)
    | Ok v -> (
      match
        try `C (do_commit db root ~home)
        with e ->
          record_fatal db e;
          `F (Printexc.to_string e)
      with
      | `C (Ok ()) -> Ok v
      | `C (Error (C_fail fr)) ->
        Error (Some Ab_validation, Occ.Commit.fail_message fr, obs_kind_of_fail fr)
      | `C (Error C_internal) ->
        Error
          ( Some Ab_validation,
            "validation failed (2pc): internal vote error",
            Obs.Abort.Internal )
      | `C (Error C_timeout) ->
        Error
          ( Some Ab_timeout,
            "deadline expired during 2pc prepare",
            Obs.Abort.Timeout )
      | `F m -> Error (None, "internal commit error: " ^ m, Obs.Abort.Internal))
    | Error (`Aborted (kc, m)) -> Error (Some kc, m, obs_kind_of_class kc)
    | Error (`Fatal e) -> (
      match classify_exn e with
      | Some (kc, m) -> Error (Some kc, m, obs_kind_of_class kc)
      | None ->
        record_fatal db e;
        Error
          (None, "internal error: " ^ Printexc.to_string e, Obs.Abort.Internal))
  in
  (match verdict with
  | Ok _ -> Atomic.incr db.committed
  | Error (kc, _, _) ->
    Atomic.incr db.aborted;
    (match kc with Some kc -> Atomic.incr (bucket_counter db kc) | None -> ()));
  let latency_us = now_us () -. t_submit in
  let participants = Stdlib.max 1 (List.length (Occ.Txn.containers txn)) in
  let abort_cause =
    match verdict with
    | Ok _ -> None
    | Error (_, _, kind) -> Some (Obs.Abort.cause ~participants ~retry kind)
  in
  (match db.obs with
  | None -> ()
  | Some c -> (
    (* this job runs on [home]'s domain, the owner of slot [home] *)
    match abort_cause with
    | None ->
      Obs.Collector.record_commit c ~container:home ~participants ~retry
        ~latency_us tr
    | Some cause ->
      Obs.Collector.record_abort c ~container:home ~latency_us ~cause tr));
  let out =
    {
      result = (match verdict with Ok v -> Ok v | Error (_, m, _) -> Error m);
      latency_us;
      containers_touched = List.length (Occ.Txn.containers txn);
      abort_cause;
    }
  in
  (try k out with e -> record_fatal db e);
  Atomic.incr db.completed

let submit ?(retry = 0) ?deadline_us db ~reactor ~proc ~args ~k =
  let entry = reactor_state db reactor in
  let home = entry.Reactdb.Bootstrap.bs_home in
  Atomic.incr db.submitted;
  let t_submit = now_us () in
  let abs_deadline =
    match deadline_us with
    | Some d -> t_submit +. d
    | None -> Float.infinity
  in
  let job =
    exec_root db ~reactor ~proc ~args ~retry ~t_submit
      ~deadline_us:abs_deadline ~k
  in
  let ingress =
    match db.cfg.Reactdb.Config.router with
    | Reactdb.Config.Affinity -> home
    | Reactdb.Config.Round_robin ->
      Atomic.fetch_and_add db.rr 1 mod Array.length db.execs
  in
  (* Admission control happens here and only here: root ingress goes
     through [try_push] against the (possibly bounded) ingress mailbox.
     Everything the runtime pushes on its own behalf — forwarding hops,
     suspended-fiber resumptions, 2PC traffic — uses unconditional [push]:
     shedding those would wedge an in-flight transaction instead of
     refusing a new one. *)
  let accepted =
    if ingress = home then Mailbox.try_push db.execs.(home).mb job
    else
      (* Misrouted ingress pays a forwarding hop to the owner — the locality
         cost the affinity router avoids. *)
      Mailbox.try_push db.execs.(ingress).mb (fun () ->
          Mailbox.push db.execs.(home).mb job)
  in
  if not accepted then begin
    (* Shed at admission: the attempt never reaches a domain, so the
       outcome is synthesized on the submitter's thread. Obs collector
       slots are owned by home domains, so no lifecycle record is written
       for sheds — the typed counters still account for them exactly. *)
    Atomic.incr db.aborted;
    Atomic.incr db.ab_overload;
    let out =
      {
        result = Error "overloaded: admission queue full";
        latency_us = now_us () -. t_submit;
        containers_touched = 0;
        abort_cause =
          Some (Obs.Abort.cause ~participants:1 ~retry Obs.Abort.Overloaded);
      }
    in
    (try k out with e -> record_fatal db e);
    Atomic.incr db.completed
  end

let exec_txn ?deadline_us db ~reactor ~proc ~args =
  let iv = Ivar.create () in
  submit ?deadline_us db ~reactor ~proc ~args ~k:(fun out -> Ivar.fill iv out);
  Ivar.read_block iv

(* Read [completed] before [submitted]: both monotone, every submit precedes
   its completion, so equal reads in this order imply a true fixpoint (as
   long as the caller isn't racing its own new submissions). *)
let quiesce db =
  let rec loop () =
    let c = Atomic.get db.completed in
    let s = Atomic.get db.submitted in
    if c <> s then begin
      Unix.sleepf 2e-4;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)

let start ?(chaos = Chaos.none) ?mailbox_cap decl cfg =
  let entries, _table_owner = Reactdb.Bootstrap.build decl cfg in
  let n = Reactdb.Config.n_containers cfg in
  let execs =
    Array.init n (fun eid ->
        { eid; mb = Mailbox.create ?capacity:mailbox_cap (); busy_s = 0. })
  in
  let reactors = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.add reactors e.Reactdb.Bootstrap.bs_name e) entries;
  let db =
    {
      cfg;
      execs;
      reactors;
      entries;
      chaos;
      txn_counter = Atomic.make 0;
      committed = Atomic.make 0;
      aborted = Atomic.make 0;
      ab_user = Atomic.make 0;
      ab_validation = Atomic.make 0;
      ab_dangerous = Atomic.make 0;
      ab_timeout = Atomic.make 0;
      ab_overload = Atomic.make 0;
      fatal = Atomic.make 0;
      fatal_mu = Mutex.create ();
      fatal_msgs = [];
      epoch = Atomic.make 1;
      t0 = Unix.gettimeofday ();
      rr = Atomic.make 0;
      submitted = Atomic.make 0;
      completed = Atomic.make 0;
      domains = [||];
      obs = None;
    }
  in
  db.domains <-
    Array.map (fun ex -> Domain.spawn (fun () -> domain_loop db ex)) execs;
  db

let shutdown db =
  quiesce db;
  Array.iter (fun ex -> Mailbox.close ex.mb) db.execs;
  Array.iter Domain.join db.domains;
  db.domains <- [||]

let n_domains db = Array.length db.execs
let container_of db name = (reactor_state db name).Reactdb.Bootstrap.bs_home
let catalog_of db name = (reactor_state db name).Reactdb.Bootstrap.bs_catalog

let catalogs db =
  List.map
    (fun e -> (e.Reactdb.Bootstrap.bs_name, e.Reactdb.Bootstrap.bs_catalog))
    db.entries

let n_committed db = Atomic.get db.committed
let n_aborted db = Atomic.get db.aborted

let aborts_by_reason db =
  List.filter
    (fun (_, n) -> n > 0)
    [
      ("user", Atomic.get db.ab_user);
      ("validation", Atomic.get db.ab_validation);
      ("dangerous-structure", Atomic.get db.ab_dangerous);
      ("timeout", Atomic.get db.ab_timeout);
      ("overloaded", Atomic.get db.ab_overload);
    ]

let attach_obs db c = db.obs <- Some c
let n_fatal db = Atomic.get db.fatal

let fatal_messages db =
  Mutex.lock db.fatal_mu;
  let m = db.fatal_msgs in
  Mutex.unlock db.fatal_mu;
  m

(* ------------------------------------------------------------------ *)

module Load = struct
  type spec = {
    n_workers : int;
    gen : int -> Rng.t -> Workloads.Wl.request;
    warmup_s : float;
    measure_s : float;
    seed : int;
    max_retries : int;
    deadline_us : float option;
    backoff : Backoff.policy option;
    shed_pause_us : float;
  }

  let spec ?(warmup_s = 0.2) ?(measure_s = 1.0) ?(seed = 42) ?(max_retries = 0)
      ?deadline_us ?(backoff = Some Backoff.default) ?(shed_pause_us = 500.)
      ~n_workers gen =
    { n_workers; gen; warmup_s; measure_s; seed; max_retries; deadline_us;
      backoff; shed_pause_us = Float.max 0. shed_pause_us }

  (* Deferred-work timer on its own domain, used for backoff pauses between
     retry attempts and for the post-shed pause — both must not block an
     executor domain nor recurse on the submitter's stack. [Condition] has
     no timed wait in the stdlib, so with items pending the loop polls on a
     0.2 ms quantum; idle, it parks on the condition. *)
  module Timer = struct
    type item = { due : float; thunk : unit -> unit }

    type t = {
      mu : Mutex.t;
      cond : Condition.t;
      mutable items : item list;
      mutable stopped : bool;
      mutable dom : unit Domain.t option;
      on_error : exn -> unit;
    }

    let rec loop t =
      Mutex.lock t.mu;
      if t.items = [] then
        if t.stopped then Mutex.unlock t.mu
        else begin
          Condition.wait t.cond t.mu;
          Mutex.unlock t.mu;
          loop t
        end
      else begin
        let now = Unix.gettimeofday () in
        let due, rest = List.partition (fun i -> i.due <= now) t.items in
        t.items <- rest;
        Mutex.unlock t.mu;
        List.iter (fun i -> try i.thunk () with e -> t.on_error e) due;
        if due = [] then Unix.sleepf 2e-4;
        loop t
      end

    let start ~on_error =
      let t =
        { mu = Mutex.create (); cond = Condition.create (); items = [];
          stopped = false; dom = None; on_error }
      in
      t.dom <- Some (Domain.spawn (fun () -> loop t));
      t

    let after t delay_us thunk =
      let due = Unix.gettimeofday () +. (delay_us *. 1e-6) in
      Mutex.lock t.mu;
      t.items <- { due; thunk } :: t.items;
      Condition.signal t.cond;
      Mutex.unlock t.mu

    (* Drains remaining items before exiting (callers quiesce first, so
       there normally are none). *)
    let stop t =
      Mutex.lock t.mu;
      t.stopped <- true;
      Condition.signal t.cond;
      Mutex.unlock t.mu;
      (match t.dom with Some d -> Domain.join d | None -> ());
      t.dom <- None
  end

  type result = {
    throughput : float;
    committed : int;
    aborted : int;
    retries : int;
    abort_rate : float;
    aborts_by_reason : (string * int) list;
    mean_latency_us : float;
    latency_std_us : float;
    p50_us : float;
    p95_us : float;
    p99_us : float;
    duration_s : float;
    utilizations : float array;
  }

  (* Shared attempt loop: submit [req], resubmitting transient aborts up to
     [max_retries] times with an increasing retry index, then hand the final
     outcome to [k]. Between attempts the worker pauses per the seeded
     backoff policy, parked on the timer domain (an immediate retry would
     re-contend on exactly the state it just lost to). [observe] sees every
     attempt outcome exactly once together with the retry decision made for
     it, so window accounting can attribute both from one measurement-flag
     read. *)
  let rec attempt db ~timer ~backoff ~bseed ~deadline_us ~max_retries ~observe
      ~req ~idx ~k =
    submit ~retry:idx ?deadline_us db ~reactor:req.Workloads.Wl.reactor
      ~proc:req.Workloads.Wl.proc ~args:req.Workloads.Wl.args ~k:(fun out ->
        let will_retry =
          match (out.result, out.abort_cause) with
          | Error _, Some cause ->
            Obs.Abort.transient cause.Obs.Abort.kind && idx < max_retries
          | _ -> false
        in
        observe out ~will_retry;
        if will_retry then begin
          let again () =
            attempt db ~timer ~backoff ~bseed ~deadline_us ~max_retries
              ~observe ~req ~idx:(idx + 1) ~k
          in
          match backoff with
          | None -> again ()
          | Some p ->
            Timer.after timer (Backoff.delay_us p ~seed:bseed ~attempt:(idx + 1))
              again
        end
        else k out)

  (* Per-worker backoff seed: distinct workers draw distinct jitter
     schedules from one run seed, which is what de-synchronizes retry
     stampedes on a contended key. *)
  let worker_seed seed w = seed lxor (w * 0x9e3779b9)

  (* [busy_s] is private to its domain; snapshot it with a mailbox job so
     the read happens on the owner with proper ordering. *)
  let busy_snapshot db =
    Array.map
      (fun ex ->
        let iv = Ivar.create () in
        Mailbox.push ex.mb (fun () -> Ivar.fill iv ex.busy_s);
        iv)
      db.execs
    |> Array.map Ivar.read_block

  let run db s =
    let stop = Atomic.make false in
    let measuring = Atomic.make false in
    let live = Atomic.make s.n_workers in
    let n_retries = Atomic.make 0 in
    let committed_w = Atomic.make 0 in
    let aborted_w = Atomic.make 0 in
    let kind_counts = Array.init Obs.Abort.n_kinds (fun _ -> Atomic.make 0) in
    let mu = Mutex.create () in
    let reservoir = Stats.Reservoir.create ~seed:s.seed 8192 in
    let lat = Stats.create () in
    let timer = Timer.start ~on_error:(record_fatal db) in
    (* Window accounting lives here, not in global-counter deltas: one
       [measuring] read attributes the attempt, its latency sample and its
       retry decision to the same side of the window boundary, so the
       identity commits + aborts = logical + retries holds exactly within
       the window — attempts draining after measurement end (sheds,
       timeouts, stragglers) can't be half-counted. *)
    let observe out ~will_retry =
      if Atomic.get measuring then begin
        (match out.result with
        | Ok _ ->
          Atomic.incr committed_w;
          Mutex.lock mu;
          Stats.Reservoir.add reservoir out.latency_us;
          Stats.add lat out.latency_us;
          Mutex.unlock mu
        | Error _ ->
          Atomic.incr aborted_w;
          (match out.abort_cause with
          | Some c ->
            Atomic.incr kind_counts.(Obs.Abort.kind_index c.Obs.Abort.kind)
          | None -> ()));
        if will_retry then Atomic.incr n_retries
      end
    in
    (* Completion-driven virtual client: worker [w]'s callback records the
       finished logical transaction (after any retries) and submits the
       next one. Every chain ends by decrementing [live], including chains
       parked on the timer. *)
    let rec step w rng =
      if Atomic.get stop then Atomic.decr live
      else
        match
          try Some (s.gen w rng)
          with e ->
            record_fatal db e;
            None
        with
        | None -> Atomic.decr live
        | Some req ->
          attempt db ~timer ~backoff:s.backoff ~bseed:(worker_seed s.seed w)
            ~deadline_us:s.deadline_us ~max_retries:s.max_retries ~observe
            ~req ~idx:0
            ~k:(fun out ->
              match out.abort_cause with
              | Some c when c.Obs.Abort.kind = Obs.Abort.Overloaded ->
                (* Shed at admission: pause before offering new work (the
                   backpressure response), and hop through the timer domain
                   — a synchronous resubmit would recurse submit → shed →
                   submit on the saturated mailbox. *)
                Timer.after timer s.shed_pause_us (fun () -> step w rng)
              | _ -> step w rng)
    in
    for w = 0 to s.n_workers - 1 do
      step w (Rng.stream ~seed:s.seed w)
    done;
    Unix.sleepf s.warmup_s;
    let busy0 = busy_snapshot db in
    let t_start = Unix.gettimeofday () in
    Atomic.set measuring true;
    Unix.sleepf s.measure_s;
    Atomic.set measuring false;
    let t_end = Unix.gettimeofday () in
    Atomic.set stop true;
    (* Drain worker chains first (they may still be parked on the timer),
       then the runtime's in-flight roots, then retire the timer. *)
    while Atomic.get live > 0 do
      Unix.sleepf 2e-4
    done;
    quiesce db;
    Timer.stop timer;
    let busy1 = busy_snapshot db in
    let t_drained = Unix.gettimeofday () in
    let window = Float.max 1e-9 (t_end -. t_start) in
    let committed = Atomic.get committed_w and aborted = Atomic.get aborted_w in
    let done_ = committed + aborted in
    {
      throughput = float_of_int committed /. window;
      committed;
      aborted;
      retries = Atomic.get n_retries;
      abort_rate =
        (if done_ = 0 then 0. else float_of_int aborted /. float_of_int done_);
      aborts_by_reason =
        List.filter_map
          (fun k ->
            let n = Atomic.get kind_counts.(Obs.Abort.kind_index k) in
            if n > 0 then Some (Obs.Abort.kind_name k, n) else None)
          Obs.Abort.all_kinds;
      mean_latency_us = Stats.mean lat;
      latency_std_us = Stats.stddev lat;
      p50_us = Stats.Reservoir.percentile reservoir 50.;
      p95_us = Stats.Reservoir.percentile reservoir 95.;
      p99_us = Stats.Reservoir.percentile reservoir 99.;
      duration_s = window;
      utilizations =
        Array.init (Array.length busy0) (fun i ->
            (busy1.(i) -. busy0.(i)) /. Float.max 1e-9 (t_drained -. t_start));
    }

  let run_fixed ?(max_retries = 0) ?deadline_us
      ?(backoff = Some Backoff.default) db ~n_workers ~per_worker ~seed gen =
    let n_retries = Atomic.make 0 in
    let done_ = Atomic.make 0 in
    let total = n_workers * per_worker in
    let timer = Timer.start ~on_error:(record_fatal db) in
    let observe _out ~will_retry = if will_retry then Atomic.incr n_retries in
    let rec step w rng left =
      if left > 0 then
        match
          try Some (gen w rng)
          with e ->
            record_fatal db e;
            None
        with
        | None ->
          (* generator died: account the chain's remaining transactions so
             the drain below still terminates *)
          ignore (Atomic.fetch_and_add done_ left)
        | Some req ->
          attempt db ~timer ~backoff ~bseed:(worker_seed seed w) ~deadline_us
            ~max_retries ~observe ~req ~idx:0
            ~k:(fun out ->
              Atomic.incr done_;
              match out.abort_cause with
              | Some c when c.Obs.Abort.kind = Obs.Abort.Overloaded ->
                Timer.after timer 500. (fun () -> step w rng (left - 1))
              | _ -> step w rng (left - 1))
    in
    for w = 0 to n_workers - 1 do
      step w (Rng.stream ~seed w) per_worker
    done;
    (* [quiesce] alone is not enough: a retry parked on the timer is not
       yet submitted, so submitted = completed can hold mid-transaction.
       Logical completion is the fixpoint that matters. *)
    while Atomic.get done_ < total do
      Unix.sleepf 2e-4
    done;
    quiesce db;
    Timer.stop timer;
    Atomic.get n_retries
end
