module Json = Json

type clock = Virtual | Wall

let clock_name = function Virtual -> "virtual" | Wall -> "wall"

let clock_of_name = function
  | "virtual" -> Some Virtual
  | "wall" -> Some Wall
  | _ -> None

module Phase = struct
  type t =
    | Queue_wait
    | Exec
    | Suspend_wait
    | Validation
    | Commit
    | Flush_wait
    | Overhead

  let all =
    [ Queue_wait; Exec; Suspend_wait; Validation; Commit; Flush_wait; Overhead ]

  let count = 7

  let index = function
    | Queue_wait -> 0
    | Exec -> 1
    | Suspend_wait -> 2
    | Validation -> 3
    | Commit -> 4
    | Flush_wait -> 5
    | Overhead -> 6

  let name = function
    | Queue_wait -> "queue_wait"
    | Exec -> "exec"
    | Suspend_wait -> "suspend_wait"
    | Validation -> "validation"
    | Commit -> "commit"
    | Flush_wait -> "flush_wait"
    | Overhead -> "overhead"

  let of_name = function
    | "queue_wait" -> Some Queue_wait
    | "exec" -> Some Exec
    | "suspend_wait" -> Some Suspend_wait
    | "validation" -> Some Validation
    | "commit" -> Some Commit
    | "flush_wait" -> Some Flush_wait
    | "overhead" -> Some Overhead
    | _ -> None
end

module Abort = struct
  type kind =
    | User
    | Conflict
    | Lock_busy
    | Stale_read
    | Node_changed
    | Key_exists
    | Dangerous
    | Internal
    | Timeout
    | Overloaded

  let all_kinds =
    [ User; Conflict; Lock_busy; Stale_read; Node_changed; Key_exists;
      Dangerous; Internal; Timeout; Overloaded ]

  let kind_index = function
    | User -> 0
    | Conflict -> 1
    | Lock_busy -> 2
    | Stale_read -> 3
    | Node_changed -> 4
    | Key_exists -> 5
    | Dangerous -> 6
    | Internal -> 7
    | Timeout -> 8
    | Overloaded -> 9

  let n_kinds = 10

  let kind_name = function
    | User -> "user"
    | Conflict -> "conflict"
    | Lock_busy -> "lock-busy"
    | Stale_read -> "stale-read"
    | Node_changed -> "node-changed"
    | Key_exists -> "key-exists"
    | Dangerous -> "dangerous-structure"
    | Internal -> "internal"
    | Timeout -> "timeout"
    | Overloaded -> "overloaded"

  let kind_of_name = function
    | "user" -> Some User
    | "conflict" -> Some Conflict
    | "lock-busy" -> Some Lock_busy
    | "stale-read" -> Some Stale_read
    | "node-changed" -> Some Node_changed
    | "key-exists" -> Some Key_exists
    | "dangerous-structure" -> Some Dangerous
    | "internal" -> Some Internal
    | "timeout" -> Some Timeout
    | "overloaded" -> Some Overloaded
    | _ -> None

  (* Timeout and Overloaded are deliberately non-transient: a deadline that
     expired has spent the transaction's whole latency budget, and an
     admission shed means the system is asking for LESS offered load — an
     automatic in-loop retry would defeat both. Re-attempting is the
     client's decision, with a fresh deadline and its own backoff. *)
  let transient = function
    | Conflict | Lock_busy | Stale_read | Node_changed | Key_exists -> true
    | User | Dangerous | Internal | Timeout | Overloaded -> false

  exception Timed_out of string

  type cause = { kind : kind; participants : int; retry : int }

  let cause ?(participants = 1) ?(retry = 0) kind = { kind; participants; retry }
end

module Trace = struct
  type t = { enabled : bool; ph : float array }

  let none = { enabled = false; ph = [||] }
  let make () = { enabled = true; ph = Array.make Phase.count 0. }
  let enabled t = t.enabled

  let add t p d =
    if t.enabled then begin
      let i = Phase.index p in
      if d > 0. then t.ph.(i) <- t.ph.(i) +. d
    end

  let get t p = if t.enabled then t.ph.(Phase.index p) else 0.

  let sum_measured t =
    if not t.enabled then 0.
    else begin
      (* every slot except the derived Overhead (last index) *)
      let s = ref 0. in
      for i = 0 to Phase.count - 2 do
        s := !s +. t.ph.(i)
      done;
      !s
    end

  let reset t = if t.enabled then Array.fill t.ph 0 Phase.count 0.
end

(* log2 bucket: b such that d in [2^(b-1), 2^b) microseconds, clamped to
   [0, 31]. frexp gives d = m * 2^e with m in [0.5, 1). *)
let log2_bucket d =
  if d < 1. then 0
  else
    let _, e = Float.frexp d in
    if e > 31 then 31 else e

let hist_buckets = 32
let max_part_bucket = 16 (* participants / retry-index histograms clamp here *)

(* One replica's shipping lag, published at quiescence by whoever runs the
   log shipper (Replica.Shipper.publish_obs). Applied epoch is the replica's
   durable watermark; behind = primary durable epoch - watermark. *)
type repl_row = {
  rr_replica : int;
  rr_applied_epoch : int;
  rr_epochs_behind : int;
  rr_bytes_behind : int;
  rr_batches : int; (* shipped batches applied *)
  rr_drops : int; (* batches lost/refused in flight (chaos or torn) *)
}

module Collector = struct
  type slot = {
    sums : float array; (* per phase, all attempts *)
    occs : int array; (* per phase, attempts where the phase was > 0 *)
    hist : int array array; (* per phase, log2 buckets *)
    res : Util.Stats.Reservoir.r array; (* per phase, non-zero occurrences *)
    lat_res : Util.Stats.Reservoir.r;
    mutable attempts : int;
    mutable commits : int;
    mutable ro_commits : int;
        (* subset of [commits] that ran as read-only snapshot transactions
           (no validation, no locks — abort-free by construction) *)
    mutable aborts : int;
    mutable lat_sum : float;
    ab_kinds : int array;
    parts : int array; (* participants -> attempts *)
    retries : int array; (* retry index -> attempts *)
    mutable max_dev : float; (* worst |latency - sum phases| / latency *)
    (* dynamic-scheduling signals, published once at quiescence by the
       runtime (Runtime.Db.publish_sched_obs); all zero for the simulator
       and for static-routing runs without stealing *)
    mutable steals_in : int;
    mutable steals_out : int;
    mutable routed_by_cost : int;
    mutable qdepth_ewma : float;
  }

  type t = {
    clk : clock;
    slots : slot array;
    mutable repl : repl_row list;
        (* replication lag rows, published once at quiescence; empty when
           no replicas are attached *)
  }

  let mk_slot cap seed =
    {
      sums = Array.make Phase.count 0.;
      occs = Array.make Phase.count 0;
      hist = Array.init Phase.count (fun _ -> Array.make hist_buckets 0);
      res =
        Array.init Phase.count (fun i ->
            Util.Stats.Reservoir.create ~seed:(seed + i) cap);
      lat_res = Util.Stats.Reservoir.create ~seed:(seed + Phase.count) cap;
      attempts = 0;
      commits = 0;
      ro_commits = 0;
      aborts = 0;
      lat_sum = 0.;
      ab_kinds = Array.make Abort.n_kinds 0;
      parts = Array.make (max_part_bucket + 1) 0;
      retries = Array.make (max_part_bucket + 1) 0;
      max_dev = 0.;
      steals_in = 0;
      steals_out = 0;
      routed_by_cost = 0;
      qdepth_ewma = 0.;
    }

  let create ?(reservoir_cap = 1024) ~clock ~containers () =
    if containers <= 0 then invalid_arg "Obs.Collector.create";
    {
      clk = clock;
      slots =
        Array.init containers (fun c -> mk_slot reservoir_cap (0x0b5 + (c * 64)));
      repl = [];
    }

  let clock t = t.clk
  let containers t = Array.length t.slots
  let trace _t = Trace.make ()

  let slot_of t c =
    let n = Array.length t.slots in
    if c >= 0 && c < n then t.slots.(c) else t.slots.(0)

  let clamp_bucket i = if i < 0 then 0 else min i max_part_bucket

  let record_attempt t ~container ~participants ~retry ~latency_us tr =
    let s = slot_of t container in
    s.attempts <- s.attempts + 1;
    s.lat_sum <- s.lat_sum +. latency_us;
    Util.Stats.Reservoir.add s.lat_res latency_us;
    s.parts.(clamp_bucket participants) <- s.parts.(clamp_bucket participants) + 1;
    s.retries.(clamp_bucket retry) <- s.retries.(clamp_bucket retry) + 1;
    if Trace.enabled tr then begin
      let measured = Trace.sum_measured tr in
      let overhead = latency_us -. measured in
      if overhead > 0. then Trace.add tr Phase.Overhead overhead
      else if latency_us > 0. then begin
        (* negative remainder: phases double-counted beyond the latency;
           keep the evidence so the 1% gate can catch it. *)
        let dev = (measured -. latency_us) /. latency_us in
        if dev > s.max_dev then s.max_dev <- dev
      end;
      List.iter
        (fun p ->
          let i = Phase.index p in
          let d = Trace.get tr p in
          s.sums.(i) <- s.sums.(i) +. d;
          if d > 0. then begin
            s.occs.(i) <- s.occs.(i) + 1;
            s.hist.(i).(log2_bucket d) <- s.hist.(i).(log2_bucket d) + 1;
            Util.Stats.Reservoir.add s.res.(i) d
          end)
        Phase.all
    end

  let record_commit t ~container ?(participants = 1) ?(retry = 0)
      ?(readonly = false) ~latency_us tr =
    let s = slot_of t container in
    s.commits <- s.commits + 1;
    if readonly then s.ro_commits <- s.ro_commits + 1;
    record_attempt t ~container ~participants ~retry ~latency_us tr

  let set_sched t ~container ~steals_in ~steals_out ~routed_by_cost
      ~qdepth_ewma =
    let s = slot_of t container in
    s.steals_in <- steals_in;
    s.steals_out <- steals_out;
    s.routed_by_cost <- routed_by_cost;
    s.qdepth_ewma <- qdepth_ewma

  let set_repl t rows = t.repl <- rows

  let queue_wait_mean_us t ~container =
    let s = slot_of t container in
    if s.attempts = 0 then 0.
    else s.sums.(Phase.index Phase.Queue_wait) /. float_of_int s.attempts

  let record_abort t ~container ~latency_us ~cause tr =
    let s = slot_of t container in
    s.aborts <- s.aborts + 1;
    s.ab_kinds.(Abort.kind_index cause.Abort.kind) <-
      s.ab_kinds.(Abort.kind_index cause.Abort.kind) + 1;
    record_attempt t ~container ~participants:cause.Abort.participants
      ~retry:cause.Abort.retry ~latency_us tr
end

module Report = struct
  (* v3: per-domain dynamic-scheduling rows (steals in/out, cost-routed
     roots, queue-depth EWMA). v2 added the "timeout" and "overloaded"
     abort kinds. Readers accept v2 (scheduler rows default to empty) and
     v3; anything else is rejected. The "replication" array (per-replica
     lag rows) is additive within v3: emitted only when replicas were
     attached, defaulted to empty on read. *)
  let schema_version = 3

  let min_readable_version = 2

  type phase_row = {
    pr_phase : string;
    pr_count : int;
    pr_sum_us : float;
    pr_mean_us : float;
    pr_p50_us : float;
    pr_p95_us : float;
    pr_p99_us : float;
    pr_share_pct : float;
    pr_hist : (int * int) list;
  }

  (* One domain's dynamic-scheduling counters (v3). Only domains with at
     least one non-zero signal are exported. *)
  type sched_row = {
    sr_container : int;
    sr_steals_in : int;
    sr_steals_out : int;
    sr_routed_by_cost : int;
    sr_qdepth_ewma : float;
  }

  type t = {
    r_clock : string;
    r_attempts : int;
    r_commits : int;
    r_ro_commits : int;
    r_aborts : int;
    r_retries : int;
    r_mean_latency_us : float;
    r_lat_p50_us : float;
    r_lat_p95_us : float;
    r_lat_p99_us : float;
    r_max_sum_dev_pct : float;
    r_phases : phase_row list;
    r_aborts_by_kind : (string * int) list;
    r_participants : (int * int) list;
    r_retry_hist : (int * int) list;
    r_sched : sched_row list;
    r_repl : repl_row list;
  }

  (* Nearest-rank percentile over pooled reservoir snapshots. *)
  let pooled_percentile arrays p =
    let total = List.fold_left (fun a xs -> a + Array.length xs) 0 arrays in
    if total = 0 then 0.
    else begin
      let all = Array.make total 0. in
      let off = ref 0 in
      List.iter
        (fun xs ->
          Array.blit xs 0 all !off (Array.length xs);
          off := !off + Array.length xs)
        arrays;
      Array.sort Float.compare all;
      let rank = int_of_float (ceil (p /. 100. *. float_of_int total)) in
      all.(max 0 (min (total - 1) (rank - 1)))
    end

  let sparse_hist counts =
    let acc = ref [] in
    for i = Array.length counts - 1 downto 0 do
      if counts.(i) > 0 then acc := (i, counts.(i)) :: !acc
    done;
    !acc

  let summarize (c : Collector.t) =
    let slots = Array.to_list c.Collector.slots in
    let fold f init = List.fold_left f init slots in
    let attempts = fold (fun a s -> a + s.Collector.attempts) 0 in
    let commits = fold (fun a s -> a + s.Collector.commits) 0 in
    let ro_commits = fold (fun a s -> a + s.Collector.ro_commits) 0 in
    let aborts = fold (fun a s -> a + s.Collector.aborts) 0 in
    let lat_sum = fold (fun a s -> a +. s.Collector.lat_sum) 0. in
    let max_dev = fold (fun a s -> Float.max a s.Collector.max_dev) 0. in
    let lat_samples =
      List.map (fun s -> Util.Stats.Reservoir.samples s.Collector.lat_res) slots
    in
    let phases =
      List.map
        (fun p ->
          let i = Phase.index p in
          let sum = fold (fun a s -> a +. s.Collector.sums.(i)) 0. in
          let occ = fold (fun a s -> a + s.Collector.occs.(i)) 0 in
          let hist = Array.make hist_buckets 0 in
          List.iter
            (fun s ->
              Array.iteri
                (fun b n -> hist.(b) <- hist.(b) + n)
                s.Collector.hist.(i))
            slots;
          let samples =
            List.map
              (fun s -> Util.Stats.Reservoir.samples s.Collector.res.(i))
              slots
          in
          {
            pr_phase = Phase.name p;
            pr_count = occ;
            pr_sum_us = sum;
            pr_mean_us = (if attempts = 0 then 0. else sum /. float_of_int attempts);
            pr_p50_us = pooled_percentile samples 50.;
            pr_p95_us = pooled_percentile samples 95.;
            pr_p99_us = pooled_percentile samples 99.;
            pr_share_pct = (if lat_sum <= 0. then 0. else 100. *. sum /. lat_sum);
            pr_hist = sparse_hist hist;
          })
        Phase.all
    in
    let aborts_by_kind =
      List.filter_map
        (fun k ->
          let i = Abort.kind_index k in
          let n = fold (fun a s -> a + s.Collector.ab_kinds.(i)) 0 in
          if n = 0 then None else Some (Abort.kind_name k, n))
        Abort.all_kinds
    in
    let sparse_ints sel =
      let acc = Array.make (max_part_bucket + 1) 0 in
      List.iter
        (fun s -> Array.iteri (fun i n -> acc.(i) <- acc.(i) + n) (sel s))
        slots;
      sparse_hist acc
    in
    let retry_hist = sparse_ints (fun s -> s.Collector.retries) in
    let retries =
      List.fold_left (fun a (i, n) -> if i > 0 then a + n else a) 0 retry_hist
    in
    let sched =
      List.concat
        (List.mapi
           (fun i s ->
             if
               s.Collector.steals_in = 0
               && s.Collector.steals_out = 0
               && s.Collector.routed_by_cost = 0
               && s.Collector.qdepth_ewma = 0.
             then []
             else
               [
                 {
                   sr_container = i;
                   sr_steals_in = s.Collector.steals_in;
                   sr_steals_out = s.Collector.steals_out;
                   sr_routed_by_cost = s.Collector.routed_by_cost;
                   sr_qdepth_ewma = s.Collector.qdepth_ewma;
                 };
               ])
           slots)
    in
    {
      r_clock = clock_name c.Collector.clk;
      r_attempts = attempts;
      r_commits = commits;
      r_ro_commits = ro_commits;
      r_aborts = aborts;
      r_retries = retries;
      r_mean_latency_us =
        (if attempts = 0 then 0. else lat_sum /. float_of_int attempts);
      r_lat_p50_us = pooled_percentile lat_samples 50.;
      r_lat_p95_us = pooled_percentile lat_samples 95.;
      r_lat_p99_us = pooled_percentile lat_samples 99.;
      r_max_sum_dev_pct = 100. *. max_dev;
      r_phases = phases;
      r_aborts_by_kind = aborts_by_kind;
      r_participants = sparse_ints (fun s -> s.Collector.parts);
      r_retry_hist = retry_hist;
      r_sched = sched;
      r_repl = c.Collector.repl;
    }

  let to_table r =
    let buf = Buffer.create 1024 in
    let title =
      Printf.sprintf
        "transaction phase breakdown (clock=%s, attempts=%d, commits=%d, \
         ro-commits=%d, aborts=%d)"
        r.r_clock r.r_attempts r.r_commits r.r_ro_commits r.r_aborts
    in
    let t =
      Util.Tablefmt.create ~title
        [ "phase"; "count"; "mean us"; "p50 us"; "p95 us"; "p99 us"; "share %" ]
    in
    List.iter
      (fun p ->
        Util.Tablefmt.row t
          [
            p.pr_phase;
            Util.Tablefmt.icell p.pr_count;
            Util.Tablefmt.fcell ~digits:2 p.pr_mean_us;
            Util.Tablefmt.fcell ~digits:2 p.pr_p50_us;
            Util.Tablefmt.fcell ~digits:2 p.pr_p95_us;
            Util.Tablefmt.fcell ~digits:2 p.pr_p99_us;
            Util.Tablefmt.fcell ~digits:1 p.pr_share_pct;
          ])
      r.r_phases;
    Buffer.add_string buf (Util.Tablefmt.to_string t);
    Buffer.add_string buf
      (Printf.sprintf
         "mean latency %.2f us  p50 %.2f  p95 %.2f  p99 %.2f  max phase-sum dev %.3f%%  retries %d\n"
         r.r_mean_latency_us r.r_lat_p50_us r.r_lat_p95_us r.r_lat_p99_us
         r.r_max_sum_dev_pct r.r_retries);
    if r.r_aborts_by_kind <> [] then begin
      let ta = Util.Tablefmt.create ~title:"abort taxonomy" [ "kind"; "count" ] in
      List.iter
        (fun (k, n) -> Util.Tablefmt.row ta [ k; Util.Tablefmt.icell n ])
        r.r_aborts_by_kind;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Util.Tablefmt.to_string ta)
    end;
    if r.r_sched <> [] then begin
      let ts =
        Util.Tablefmt.create ~title:"dynamic scheduling (per domain)"
          [ "domain"; "steals in"; "steals out"; "cost-routed"; "qdepth ewma" ]
      in
      List.iter
        (fun s ->
          Util.Tablefmt.row ts
            [
              Util.Tablefmt.icell s.sr_container;
              Util.Tablefmt.icell s.sr_steals_in;
              Util.Tablefmt.icell s.sr_steals_out;
              Util.Tablefmt.icell s.sr_routed_by_cost;
              Util.Tablefmt.fcell ~digits:2 s.sr_qdepth_ewma;
            ])
        r.r_sched;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Util.Tablefmt.to_string ts)
    end;
    if r.r_repl <> [] then begin
      let tr =
        Util.Tablefmt.create ~title:"replication lag (per replica)"
          [
            "replica"; "applied epoch"; "epochs behind"; "bytes behind";
            "batches"; "drops";
          ]
      in
      List.iter
        (fun x ->
          Util.Tablefmt.row tr
            [
              Util.Tablefmt.icell x.rr_replica;
              Util.Tablefmt.icell x.rr_applied_epoch;
              Util.Tablefmt.icell x.rr_epochs_behind;
              Util.Tablefmt.icell x.rr_bytes_behind;
              Util.Tablefmt.icell x.rr_batches;
              Util.Tablefmt.icell x.rr_drops;
            ])
        r.r_repl;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Util.Tablefmt.to_string tr)
    end;
    Buffer.contents buf

  let pairs_json conv xs =
    Json.List (List.map (fun (a, b) -> Json.List [ conv a; Json.Num (float_of_int b) ]) xs)

  let int_pairs = pairs_json (fun i -> Json.Num (float_of_int i))
  let str_pairs = pairs_json (fun s -> Json.Str s)

  let to_json r =
    let repl_field =
      (* additive: omitted entirely when no replicas were attached, so
         replica-free reports are byte-identical to pre-replication ones *)
      if r.r_repl = [] then []
      else
        [
          ( "replication",
            Json.List
              (List.map
                 (fun x ->
                   Json.Obj
                     [
                       ("replica", Json.Num (float_of_int x.rr_replica));
                       ( "applied_epoch",
                         Json.Num (float_of_int x.rr_applied_epoch) );
                       ( "epochs_behind",
                         Json.Num (float_of_int x.rr_epochs_behind) );
                       ( "bytes_behind",
                         Json.Num (float_of_int x.rr_bytes_behind) );
                       ("batches", Json.Num (float_of_int x.rr_batches));
                       ("drops", Json.Num (float_of_int x.rr_drops));
                     ])
                 r.r_repl) );
        ]
    in
    Json.Obj
      ([
        ("schema_version", Json.Num (float_of_int schema_version));
        ("clock", Json.Str r.r_clock);
        ("attempts", Json.Num (float_of_int r.r_attempts));
        ("commits", Json.Num (float_of_int r.r_commits));
        ("readonly_commits", Json.Num (float_of_int r.r_ro_commits));
        ("aborts", Json.Num (float_of_int r.r_aborts));
        ("retries", Json.Num (float_of_int r.r_retries));
        ("mean_latency_us", Json.Num r.r_mean_latency_us);
        ("lat_p50_us", Json.Num r.r_lat_p50_us);
        ("lat_p95_us", Json.Num r.r_lat_p95_us);
        ("lat_p99_us", Json.Num r.r_lat_p99_us);
        ("max_phase_sum_dev_pct", Json.Num r.r_max_sum_dev_pct);
        ( "phases",
          Json.List
            (List.map
               (fun p ->
                 Json.Obj
                   [
                     ("phase", Json.Str p.pr_phase);
                     ("count", Json.Num (float_of_int p.pr_count));
                     ("sum_us", Json.Num p.pr_sum_us);
                     ("mean_us", Json.Num p.pr_mean_us);
                     ("p50_us", Json.Num p.pr_p50_us);
                     ("p95_us", Json.Num p.pr_p95_us);
                     ("p99_us", Json.Num p.pr_p99_us);
                     ("share_pct", Json.Num p.pr_share_pct);
                     ("hist", int_pairs p.pr_hist);
                   ])
               r.r_phases) );
        ("aborts_by_kind", str_pairs r.r_aborts_by_kind);
        ("participants", int_pairs r.r_participants);
        ("retry_hist", int_pairs r.r_retry_hist);
        ( "scheduler",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj
                   [
                     ("container", Json.Num (float_of_int s.sr_container));
                     ("steals_in", Json.Num (float_of_int s.sr_steals_in));
                     ("steals_out", Json.Num (float_of_int s.sr_steals_out));
                     ( "routed_by_cost",
                       Json.Num (float_of_int s.sr_routed_by_cost) );
                     ("qdepth_ewma", Json.Num s.sr_qdepth_ewma);
                   ])
               r.r_sched) );
      ]
      @ repl_field)

  let ( let* ) o f = match o with Some x -> f x | None -> Error "bad field"

  let get_f j k = Json.member k j |> Option.map (fun v -> Json.to_float v) |> Option.join
  let get_i j k = Json.member k j |> Option.map (fun v -> Json.to_int v) |> Option.join
  let get_s j k = Json.member k j |> Option.map (fun v -> Json.to_str v) |> Option.join
  let get_l j k = Json.member k j |> Option.map (fun v -> Json.to_list v) |> Option.join

  let parse_pairs conv xs =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Json.List [ a; b ] :: tl -> (
        match (conv a, Json.to_int b) with
        | Some a, Some b -> go ((a, b) :: acc) tl
        | _ -> None)
      | _ -> None
    in
    go [] xs

  let of_json j =
    match get_i j "schema_version" with
    | None -> Error "missing schema_version"
    | Some v when v < min_readable_version || v > schema_version ->
      Error
        (Printf.sprintf "unsupported schema_version %d (want %d..%d)" v
           min_readable_version schema_version)
    | Some _ ->
      let parse_phase pj =
        let* phase = get_s pj "phase" in
        let* count = get_i pj "count" in
        let* sum = get_f pj "sum_us" in
        let* mean = get_f pj "mean_us" in
        let* p50 = get_f pj "p50_us" in
        let* p95 = get_f pj "p95_us" in
        let* p99 = get_f pj "p99_us" in
        let* share = get_f pj "share_pct" in
        let* hist = get_l pj "hist" in
        let* hist = parse_pairs Json.to_int hist in
        Ok
          {
            pr_phase = phase;
            pr_count = count;
            pr_sum_us = sum;
            pr_mean_us = mean;
            pr_p50_us = p50;
            pr_p95_us = p95;
            pr_p99_us = p99;
            pr_share_pct = share;
            pr_hist = hist;
          }
      in
      let rec phases acc = function
        | [] -> Ok (List.rev acc)
        | pj :: tl -> (
          match parse_phase pj with
          | Ok p -> phases (p :: acc) tl
          | Error e -> Error e)
      in
      let* clock = get_s j "clock" in
      let* attempts = get_i j "attempts" in
      let* commits = get_i j "commits" in
      (* older reports predate snapshot reads: default to 0 *)
      let ro_commits = Option.value ~default:0 (get_i j "readonly_commits") in
      let* aborts = get_i j "aborts" in
      let* retries = get_i j "retries" in
      let* mean_lat = get_f j "mean_latency_us" in
      let* p50 = get_f j "lat_p50_us" in
      let* p95 = get_f j "lat_p95_us" in
      let* p99 = get_f j "lat_p99_us" in
      let* dev = get_f j "max_phase_sum_dev_pct" in
      let* phase_list = get_l j "phases" in
      let* ab = get_l j "aborts_by_kind" in
      let* ab = parse_pairs Json.to_str ab in
      let* parts = get_l j "participants" in
      let* parts = parse_pairs Json.to_int parts in
      let* rh = get_l j "retry_hist" in
      let* rh = parse_pairs Json.to_int rh in
      (* v2 reports have no "scheduler" field: default to no rows. *)
      let parse_sched sj =
        let* c = get_i sj "container" in
        let* si = get_i sj "steals_in" in
        let* so = get_i sj "steals_out" in
        let* rc = get_i sj "routed_by_cost" in
        let* q = get_f sj "qdepth_ewma" in
        Ok
          {
            sr_container = c;
            sr_steals_in = si;
            sr_steals_out = so;
            sr_routed_by_cost = rc;
            sr_qdepth_ewma = q;
          }
      in
      let rec scheds acc = function
        | [] -> Ok (List.rev acc)
        | sj :: tl -> (
          match parse_sched sj with
          | Ok s -> scheds (s :: acc) tl
          | Error e -> Error e)
      in
      let sched_result =
        match get_l j "scheduler" with
        | None -> Ok []
        | Some xs -> scheds [] xs
      in
      let parse_repl rj =
        let* r = get_i rj "replica" in
        let* ae = get_i rj "applied_epoch" in
        let* eb = get_i rj "epochs_behind" in
        let* bb = get_i rj "bytes_behind" in
        let* ba = get_i rj "batches" in
        let* dr = get_i rj "drops" in
        Ok
          {
            rr_replica = r;
            rr_applied_epoch = ae;
            rr_epochs_behind = eb;
            rr_bytes_behind = bb;
            rr_batches = ba;
            rr_drops = dr;
          }
      in
      let rec repls acc = function
        | [] -> Ok (List.rev acc)
        | rj :: tl -> (
          match parse_repl rj with
          | Ok r -> repls (r :: acc) tl
          | Error e -> Error e)
      in
      (* reports without replicas omit the field: default to no rows. *)
      let repl_result =
        match get_l j "replication" with
        | None -> Ok []
        | Some xs -> repls [] xs
      in
      (match (phases [] phase_list, sched_result, repl_result) with
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
      | Ok r_phases, Ok r_sched, Ok r_repl ->
        Ok
          {
            r_clock = clock;
            r_attempts = attempts;
            r_commits = commits;
            r_ro_commits = ro_commits;
            r_aborts = aborts;
            r_retries = retries;
            r_mean_latency_us = mean_lat;
            r_lat_p50_us = p50;
            r_lat_p95_us = p95;
            r_lat_p99_us = p99;
            r_max_sum_dev_pct = dev;
            r_phases;
            r_aborts_by_kind = ab;
            r_participants = parts;
            r_retry_hist = rh;
            r_sched;
            r_repl;
          })
end
