(** Minimal self-contained JSON used by the observability layer.

    The repository deliberately has no external JSON dependency, yet the
    tracer must export machine-readable reports ({!Obs.Report.to_json}) and
    the predictability benchmark must read committed [BENCH_*.json]
    baselines back in. This module is that round trip: a small value type,
    a writer, and a recursive-descent reader.

    Floats are printed with enough digits ([%.17g]) that
    [of_string (to_string v)] reproduces [v] bit-for-bit — the QCheck
    round-trip property in [test/suite_obs.ml] relies on this. *)

(** A JSON document. Numbers are uniformly [float]; integers survive the
    round trip exactly up to 2{^53}. *)
type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize. [~pretty:true] (default [false]) indents with two spaces,
    for committed benchmark artifacts that humans diff. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. The error string carries a byte
    offset. Accepts exactly the constructs {!to_string} emits plus
    standard escapes; rejects trailing garbage. *)

(** {2 Accessors}

    Total accessors used by report readers; each returns [None] on a
    shape mismatch rather than raising. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to the first occurrence of
    [k], if any. [None] on non-objects. *)

val to_float : t -> float option
(** [Num] payload. *)

val to_int : t -> int option
(** [Num] payload truncated; [None] if not integral. *)

val to_str : t -> string option
(** [Str] payload. *)

val to_list : t -> t list option
(** [List] payload. *)
