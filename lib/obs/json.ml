type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Integral values print without a fractional part so committed artifacts
   stay readable; everything else gets %.17g, which float_of_string
   inverts exactly. *)
let num_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let pad n = Buffer.add_char b '\n'; Buffer.add_string b (String.make n ' ') in
  let rec go ind v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f -> Buffer.add_string b (num_str f)
    | Str s -> Buffer.add_char b '"'; escape b s; Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b (if pretty then "," else ",");
          if pretty then pad (ind + 2);
          go (ind + 2) x)
        xs;
      if pretty then pad ind;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          if pretty then pad (ind + 2);
          Buffer.add_char b '"'; escape b k; Buffer.add_string b "\": ";
          go (ind + 2) x)
        kvs;
      if pretty then pad ind;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'; incr pos
        | '\\' -> Buffer.add_char b '\\'; incr pos
        | '/' -> Buffer.add_char b '/'; incr pos
        | 'n' -> Buffer.add_char b '\n'; incr pos
        | 'r' -> Buffer.add_char b '\r'; incr pos
        | 't' -> Buffer.add_char b '\t'; incr pos
        | 'b' -> Buffer.add_char b '\b'; incr pos
        | 'f' -> Buffer.add_char b '\012'; incr pos
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          (* ASCII range only; our writer never emits anything higher. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
          pos := !pos + 5
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char b c; incr pos; go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do incr pos done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then (incr pos; Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; members ((k, v) :: acc)
          | Some '}' -> incr pos; List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then (incr pos; List [])
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> incr pos; items (v :: acc)
          | Some ']' -> incr pos; List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing data at byte %d" !pos)
    else Ok v
  with Fail (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
