(** Transaction-lifecycle observability.

    The paper's central claim is {e predictability}: §4.3 argues the
    deployment choice (shared-everything ± affinity, shared-nothing
    sync/async) controls the latency distribution, and Appendix C's cost
    model says where each microsecond goes. This module is the
    instrument that checks the claim: every transaction attempt is
    decomposed into a fixed set of lifecycle {!Phase}s whose durations
    sum to the end-to-end latency, plus a structured {!Abort.cause} when
    the attempt fails.

    {2 The two-clock rule}

    Both backends share one schema but different clocks. The
    discrete-event simulator ([Reactdb.Database]) stamps with
    [Sim.Engine] virtual microseconds; the real-parallel runtime
    ([Runtime.Db]) stamps with wall-clock microseconds
    ([Unix.gettimeofday]). A {!Collector} is created with its {!clock}
    and every export carries it, so virtual and wall numbers can never
    be silently mixed. Phase semantics are identical in both.

    {2 Cost discipline}

    Tracing must not perturb what it measures. When no collector is
    attached, each backend threads the shared {!Trace.none} sink through
    the hot path: every {!Trace.add} is then one branch on an immutable
    [false] and no allocation. When a collector is attached, one 7-slot
    float array is allocated per attempt and each stamp is a clock read
    plus an array store. [bench/predictability.exe] enforces a 3%
    ceiling on the no-op-sink overhead against the committed
    [BENCH_commit_path.json] baseline. *)

(** Dependency-free JSON value type, printer and parser — re-exported so
    that report consumers ([bench/predictability.exe], the CLI) read and
    write exports without an external JSON library. *)
module Json : module type of Json

(** Which clock a collector's numbers are in. *)
type clock =
  | Virtual  (** simulator virtual microseconds ([Sim.Engine.now]) *)
  | Wall  (** wall-clock microseconds ([Unix.gettimeofday]) *)

val clock_name : clock -> string
(** ["virtual"] / ["wall"] — the strings used in JSON exports. *)

val clock_of_name : string -> clock option
(** Inverse of {!clock_name}. *)

(** The fixed phase vocabulary. Phases partition an attempt's
    end-to-end latency: on every recorded attempt the seven durations
    sum to the latency (up to float rounding — checked by the QCheck
    property in [test/suite_obs.ml] and gated at 1% by
    [bench/predictability.exe]). *)
module Phase : sig
  type t =
    | Queue_wait
        (** ingress → transaction body starts executing: client dispatch,
            any forwarding hop, mailbox residence, MPL admission. *)
    | Exec
        (** body running on its executor, excluding time blocked on
            cross-reactor futures. *)
    | Suspend_wait
        (** root-path blocked windows: suspension on a cross-container
            future until its waker fires (includes the implicit
            end-of-procedure sync on unawaited children). *)
    | Validation
        (** OCC phase 1 on the root's timeline: local lock + read/node
            validation, and for 2PC the window until every participant's
            prepare vote has resolved. *)
    | Commit
        (** OCC phase 2: TID assignment, write install, lock release,
            and for 2PC the decide/ack round. *)
    | Flush_wait
        (** group-commit durability wait: from commit decision to the
            WAL epoch flush covering the transaction (durable mode
            only). *)
    | Overhead
        (** remainder: latency − (sum of the six measured phases);
            input generation and any uninstrumented slack. Derived at
            record time, clamped at zero — a negative remainder is a
            double-count bug and surfaces as a phase-sum deviation. *)

  val all : t list
  (** In display order, [Overhead] last. *)

  val count : int
  (** [List.length all], i.e. 7. *)

  val index : t -> int
  (** Dense index in [0, count); position of the phase in {!all}. *)

  val name : t -> string
  (** Stable snake_case name used in tables and JSON
      (e.g. ["queue_wait"]). *)

  val of_name : string -> t option
  (** Inverse of {!name}. *)
end

(** Structured abort taxonomy. Replaces string matching on abort
    messages: each failed attempt carries a {!kind}, the number of
    participant containers, and the retry index of the attempt. *)
module Abort : sig
  type kind =
    | User  (** explicit [Occ.Txn.Abort] raised by the procedure *)
    | Conflict
        (** execution-time conflict ([Occ.Txn.Conflict]), e.g. losing a
            duplicate-insert race before validation *)
    | Lock_busy
        (** validation lost the no-wait write-lock acquisition to a
            concurrent committer *)
    | Stale_read
        (** a read's TID changed, or its record was locked by another
            transaction, between access and validation *)
    | Node_changed
        (** a B-tree node witness (phantom protection) changed version *)
    | Key_exists
        (** an insert's key reservation found a committed duplicate *)
    | Dangerous  (** dangerous cross-reactor call ([Reactor.Dangerous_call]) *)
    | Internal  (** engine-internal failure; never expected in steady state *)
    | Timeout
        (** the attempt's deadline expired at a phase boundary; the
            engine unwound it through the normal abort path (locks
            released, 2PC participants rolled back) *)
    | Overloaded
        (** shed at admission: the home container's bounded mailbox was
            full, the attempt never started executing *)

  val all_kinds : kind list

  val kind_index : kind -> int
  (** Dense index in [0, n_kinds); position of the kind in {!all_kinds}.
      For per-kind counter arrays. *)

  val n_kinds : int
  (** [List.length all_kinds]. *)

  val kind_name : kind -> string
  (** Stable name used in tables and JSON (e.g. ["lock-busy"]). *)

  val kind_of_name : string -> kind option
  (** Inverse of {!kind_name}. *)

  val transient : kind -> bool
  (** [true] for kinds a retry can clear (conflicts and validation
      failures); [false] for [User], [Dangerous], [Internal] — and for
      [Timeout] and [Overloaded], whose whole point is to {e stop}
      spending: an expired deadline consumed the attempt's latency
      budget and a shed is the engine asking for less offered load, so
      re-attempting is the client's decision, not the retry loop's. The
      retry loops in [Harness] and [Runtime.Db.Load] retry exactly the
      transient kinds. *)

  exception Timed_out of string
  (** Raised {e by the engines, at phase boundaries only} (never inside
      application procedure bodies) when a transaction's deadline
      expires; classified as a [Timeout] abort by both backends. *)

  (** What one failed attempt looked like. *)
  type cause = {
    kind : kind;
    participants : int;  (** containers touched by the attempt *)
    retry : int;  (** retry index of the attempt; 0 = first try *)
  }

  val cause : ?participants:int -> ?retry:int -> kind -> cause
  (** Build a cause; [participants] defaults to 1, [retry] to 0. *)
end

(** One replica's log-shipping lag (DESIGN.md §12), published at
    quiescence by whoever runs the shipper ([Replica.Shipper]).
    [rr_applied_epoch] is the replica's durable watermark;
    [rr_epochs_behind] / [rr_bytes_behind] measure the unshipped suffix
    of the primary's durable log at publish time. *)
type repl_row = {
  rr_replica : int;
  rr_applied_epoch : int;
  rr_epochs_behind : int;
  rr_bytes_behind : int;
  rr_batches : int;  (** shipped batches applied *)
  rr_drops : int;  (** batches lost or refused in flight (chaos, torn) *)
}

(** Per-attempt phase accumulator. A trace is either live (records into
    a 7-slot float array) or the shared disabled sink {!none}, which
    makes every operation a no-op costing one branch. Backends thread a
    trace through the attempt and hand it to
    {!Collector.record_commit}/{!Collector.record_abort} at the end. *)
module Trace : sig
  type t

  val none : t
  (** The shared disabled sink. {!add} on it is free of allocation and
      of stores; safe to share across domains because it is never
      written. *)

  val make : unit -> t
  (** A fresh enabled trace with all phases at zero. *)

  val enabled : t -> bool

  val add : t -> Phase.t -> float -> unit
  (** [add t p d] accumulates [d] (microseconds, either clock) into
      phase [p]. No-op on {!none}. Negative [d] from clock jitter is
      clamped to zero. *)

  val get : t -> Phase.t -> float
  (** Accumulated duration; [0.] on {!none}. *)

  val sum_measured : t -> float
  (** Sum of the six measured phases (everything except
      [Phase.Overhead]). *)

  val reset : t -> unit
  (** Zero all slots, allowing reuse across retries of one attempt
      slot. No-op on {!none}. *)
end

(** Accumulates finished attempts into per-container statistics.

    Concurrency contract: slot [c] must only be written by the thread
    (simulator) or domain (runtime: container [c]'s home domain) that
    owns container [c] — per-domain ownership, no locks on the record
    path. {!Report.summarize} merges all slots and must run at
    quiescence (after [Runtime.Db.quiesce]/[shutdown] or outside
    [Sim.Engine.run]). *)
module Collector : sig
  type t

  val create : ?reservoir_cap:int -> clock:clock -> containers:int -> unit -> t
  (** [create ~clock ~containers ()] sizes one lock-free slot per
      container. [reservoir_cap] (default 1024) bounds each per-phase
      reservoir per container. *)

  val clock : t -> clock

  val containers : t -> int

  val trace : t -> Trace.t
  (** Fresh enabled trace — shorthand for {!Trace.make} that reads as
      "a trace feeding this collector". *)

  val record_commit :
    t ->
    container:int ->
    ?participants:int ->
    ?retry:int ->
    ?readonly:bool ->
    latency_us:float ->
    Trace.t ->
    unit
  (** Fold a committed attempt into slot [container]. Derives
      [Phase.Overhead] as the clamped remainder against [latency_us]
      and tracks the worst phase-sum deviation. Out-of-range container
      ids clamp to slot 0. [readonly] (default [false]) additionally
      counts the commit as a read-only snapshot transaction. *)

  val record_abort :
    t -> container:int -> latency_us:float -> cause:Abort.cause -> Trace.t -> unit
  (** Fold an aborted attempt: phase stats as for commits, plus the
      abort-kind, participant and retry-index histograms. *)

  val set_sched :
    t ->
    container:int ->
    steals_in:int ->
    steals_out:int ->
    routed_by_cost:int ->
    qdepth_ewma:float ->
    unit
  (** Publish container [container]'s dynamic-scheduling counters (work
      stealing, cost routing, queue-depth EWMA). Set-once-at-quiescence
      semantics: the runtime calls this after [quiesce] with its final
      per-domain counters ([Runtime.Db.publish_sched_obs]); the
      simulator never calls it, leaving all slots zero. Out-of-range
      container ids clamp to slot 0. *)

  val set_repl : t -> repl_row list -> unit
  (** Publish per-replica shipping-lag rows. Same
      set-once-at-quiescence contract as {!set_sched}: the shipper
      owner calls this after traffic stops; replica-free runs never
      call it, leaving the list empty (and the JSON field absent). *)

  val queue_wait_mean_us : t -> container:int -> float
  (** Mean queue-wait per attempt for slot [container]
      (queue-wait phase sum / attempts; [0.] before any attempt).
      Advisory read for controllers (e.g. [Runtime.Autoscaler]): racy
      against in-flight recording by the owning domain, like
      [Runtime.Db.load_stats]. Out-of-range ids clamp to slot 0. *)
end

(** Render and export collected statistics.

    The JSON export is versioned: {!schema_version} is bumped on any
    field rename/removal or semantic change; additions of new fields
    are allowed within a version. Readers ({!of_json}, used by
    [bench/predictability.exe]) reject documents whose version they do
    not know. *)
module Report : sig
  val schema_version : int
  (** Current export schema version (3: added the per-domain
      ["scheduler"] rows — steals, cost-routed roots, queue-depth EWMA;
      2 added the ["timeout"] and ["overloaded"] abort kinds to
      [r_aborts_by_kind]). *)

  val min_readable_version : int
  (** Oldest schema {!of_json} still accepts (2). v2 documents load
      with [r_sched = []]. *)

  (** One phase's merged statistics. [pr_count] counts attempts where
      the phase was non-zero; [pr_mean_us] is the per-attempt mean
      ([pr_sum_us] / attempts), i.e. the quantity the cost model
      predicts. Percentiles are over non-zero occurrences, pooled
      across containers. [pr_hist] is a sparse log₂ histogram:
      [(b, n)] means [n] occurrences in [[2^(b-1), 2^b)] µs. *)
  type phase_row = {
    pr_phase : string;
    pr_count : int;
    pr_sum_us : float;
    pr_mean_us : float;
    pr_p50_us : float;
    pr_p95_us : float;
    pr_p99_us : float;
    pr_share_pct : float;  (** share of total latency, percent *)
    pr_hist : (int * int) list;
  }

  (** One domain's dynamic-scheduling counters (schema v3). Domains
      where every signal is zero are omitted from [r_sched], so a
      static-scheduling run exports an empty list. *)
  type sched_row = {
    sr_container : int;
    sr_steals_in : int;  (** root jobs this domain stole from peers *)
    sr_steals_out : int;  (** root jobs peers stole from this domain *)
    sr_routed_by_cost : int;
        (** roots the cost router sent here instead of their home *)
    sr_qdepth_ewma : float;  (** mailbox-depth EWMA at last publish *)
  }

  (** A merged, export-ready summary. [r_max_sum_dev_pct] is the worst
      per-attempt relative deviation of (sum of phases) from latency —
      the predictability gate fails if it exceeds 1%. [r_retry_hist]
      maps retry index → attempts; [r_retries] counts attempts with a
      non-zero retry index. *)
  type t = {
    r_clock : string;
    r_attempts : int;
    r_commits : int;
    r_ro_commits : int;
        (** commits that ran as read-only snapshot transactions (subset of
            [r_commits]); 0 when loaded from a report predating the field *)
    r_aborts : int;
    r_retries : int;
    r_mean_latency_us : float;
    r_lat_p50_us : float;
    r_lat_p95_us : float;
    r_lat_p99_us : float;
    r_max_sum_dev_pct : float;
    r_phases : phase_row list;
    r_aborts_by_kind : (string * int) list;
    r_participants : (int * int) list;
    r_retry_hist : (int * int) list;
    r_sched : sched_row list;
    r_repl : repl_row list;
        (** per-replica shipping lag ({!Collector.set_repl}); empty — and
            absent from the JSON — when no replicas were attached *)
  }

  val summarize : Collector.t -> t
  (** Merge all container slots. Call at quiescence (see
      {!Collector}). *)

  val to_table : t -> string
  (** Text rendering via [Util.Tablefmt]: a phase-breakdown table plus,
      when any attempt aborted, an abort-taxonomy table. *)

  val to_json : t -> Json.t
  (** Versioned export; see the schema catalog in [EXPERIMENTS.md]. *)

  val of_json : Json.t -> (t, string) result
  (** Reader for {!to_json} output (also used by
      [bench/predictability.exe]). [Error _] on shape or version
      mismatch. Round-trips exactly: [of_json (to_json r) = Ok r]. *)
end
