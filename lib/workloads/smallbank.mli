(** The extended Smallbank benchmark (§4.1.3, Appendices B and H).

    Each customer is a reactor encapsulating [account], [savings] and
    [checking] (Fig. 20). Implements the standard Smallbank mix plus the
    paper's multi-transfer extension in the four program formulations of
    Fig. 21. *)

(** The Customer reactor type. Procedures: [transact_saving],
    [transact_checking], [transfer_seq], [transfer_ovp],
    [multi_transfer_sync], [multi_transfer_partial],
    [multi_transfer_fully_async], [multi_transfer_opt],
    [multi_transfer_collect], [balance], [deposit_checking], [write_check],
    [amalgamate], [send_payment], [send_payment_multi_seq],
    [send_payment_multi_par], [sum_all], [noop].

    [balance] and [sum_all] (own plus listed customers' balances via a
    fan-out/collect of [balance] reads) are declared read-only, so they
    run as abort-free snapshot transactions on backends with snapshots
    enabled. The morph pairs [multi_transfer_sync] →
    [multi_transfer_collect] and [send_payment_multi_seq] →
    [send_payment_multi_par] are declared for {!Reactdb.Config.Auto}
    per-root morphing. *)
val customer_type : Reactor.rtype

val customer_name : int -> string

(** [customers n] — the first [n] customer reactor names, in declaration
    order. *)
val customers : int -> string list

(** [decl ~customers:n ~initial ()] declares [n] customer reactors, each
    loaded with [initial] (default 10000) in savings and in checking. *)
val decl : customers:int -> ?initial:float -> unit -> Reactor.decl

(** The four multi-transfer formulations of §4.1.4, ordered from least to
    most asynchronous, plus [Collect]: the same sub-call fan-out as [Opt]
    but joined explicitly with {!Reactor.ctx.collect} (credit aborts
    surface at the collect boundary instead of at implicit sync). *)
type formulation = Fully_sync | Partially_async | Fully_async | Opt | Collect

val formulation_proc : formulation -> string
val formulation_name : formulation -> string

(** [formulation_for config] — the deployment morph (Shah 2022): the
    formulation selected by [config]'s {!Reactdb.Config.morph} knob.
    [Sequential] deployments run [Fully_sync]; [Parallel]
    (shared-nothing-async) deployments run [Collect]. *)
val formulation_for : Reactdb.Config.t -> formulation

(** Build a multi-transfer request: transfer [amount] from [src] to each of
    [dests]. *)
val multi_transfer_request :
  formulation -> src:string -> dests:string list -> amount:float -> Wl.request

(** Multi-payment request morphed by the deployment: pay [amount] to each
    destination out of [src]'s checking account —
    [send_payment_multi_seq] (credit-then-sync per destination) on
    [Sequential] deployments, [send_payment_multi_par] (fan out all
    credits, then collect) on [Parallel] ones. Both formulations debit the
    combined total up front and conserve money. *)
val send_payment_multi_request :
  Reactdb.Config.t ->
  src:string -> dests:string list -> amount:float -> Wl.request

(** One request of the standard Smallbank mix over [n] customers (H-Store
    weights: 15/15/15/15/15/25). *)
val gen_standard : Util.Rng.t -> n:int -> Wl.request

(** Money-conserving variant of the standard mix (balance 60%, amalgamate
    15%, send-payment 25% — same single/cross-container split): the total
    of {!total_money} is invariant under any committed subset, so runs can
    be audited with exact conservation. The deposit/withdraw programs of
    the standard mix legitimately change the total and are excluded. *)
val gen_conserving : Util.Rng.t -> n:int -> Wl.request

(** Zipf-skewed, money-conserving mix with a tunable read fraction: with
    probability [read_frac] a read-only [balance] transaction of a
    zipf-chosen customer, otherwise a conserving writer (amalgamate 3/8,
    send-payment 5/8) rooted at a zipf-chosen customer. Create [zipf]
    with [Util.Rng.Zipf.create ~n ~theta]; the skew concentrates readers
    and writers on the same hot customers. *)
val gen_conserving_zipf :
  Util.Rng.t -> zipf:Util.Rng.Zipf.gen -> n:int -> read_frac:float ->
  Wl.request

(** Physical sum of all savings and checking balances over the given
    catalogs — the conservation invariant used in tests. *)
val total_money : Storage.Catalog.t list -> float
