(** TPC-C in the reactor model (§4.1.3): each warehouse is a reactor
    encapsulating the nine TPC-C relations (the read-only [item] table is
    replicated per warehouse). All five transactions are implemented after
    the OLTP-Bench port the paper uses.

    Cross-reactor accesses: new-order items supplied by remote warehouses
    are grouped into one asynchronous sub-transaction per distinct remote
    warehouse; payments for customers of remote warehouses update the
    customer on its home warehouse reactor. *)

(** Scaled-down (shape-preserving) cardinalities; see EXPERIMENTS.md. *)
type sizes = {
  districts : int;
  customers_per_district : int;
  items : int;
  preloaded_orders : int;  (** per district; the most recent 30% undelivered *)
}

val default_sizes : sizes

(** Tiny sizes for unit tests. *)
val small_sizes : sizes

(** The Warehouse reactor type. Procedures: [new_order], [new_order_sync],
    [new_order_collect] (per-remote-warehouse fan-out joined at one
    {!Reactor.ctx.collect} barrier; same sub-calls and row inserts as the
    other two variants), [stock_updates], [payment], [payment_collect]
    (customer update joined at a collect barrier), [payment_customer],
    [order_status], [delivery], [deliver_district], [delivery_collect]
    (per-district fan-out joined at a collect barrier), [stock_level].

    [order_status] and [stock_level] are declared read-only, so they run
    as abort-free snapshot transactions on backends with snapshots
    enabled. Morph pairs for {!Reactdb.Config.Auto}: [new_order_sync] →
    [new_order_collect], [payment] → [payment_collect], [delivery] →
    [delivery_collect]. *)
val warehouse_type : Reactor.rtype

(** [warehouse_name i] for the 1-based warehouse index. *)
val warehouse_name : int -> string

val warehouses : int -> string list

(** TPC-C customer last names (spec clause 4.3.2.3). *)
val last_name : int -> string

(** [decl ~warehouses:n ~sizes ()] — [n] fully loaded warehouse reactors. *)
val decl : warehouses:int -> ?sizes:sizes -> unit -> Reactor.decl

(** How new-order picks remote items: [Per_item p] draws each item remotely
    with probability [p] (§4.3.2); [One_item p] makes the transaction
    cross-reactor with probability [p] via exactly one remote item
    (App. E). *)
type remote_mode = Per_item of float | One_item of float

type params = {
  n_warehouses : int;
  sizes : sizes;
  remote_mode : remote_mode;
  remote_payment_prob : float;
  delay_lo : float;
  delay_hi : float;
      (** per-item stock-replenishment delay range in µs (the
          new-order-delay variant of §4.3.2); 0 disables *)
  sync_new_order : bool;  (** use the shared-nothing-sync program variant *)
  no_proc : string;
      (** new-order procedure generated requests invoke; defaults from
          [sync_new_order], overridable with [?new_order_proc] *)
  pay_proc : string;  (** payment procedure generated requests invoke *)
  dlv_proc : string;  (** delivery procedure generated requests invoke *)
}

val params :
  ?sizes:sizes ->
  ?remote_mode:remote_mode ->
  ?remote_payment_prob:float ->
  ?delay_lo:float ->
  ?delay_hi:float ->
  ?sync_new_order:bool ->
  ?new_order_proc:string ->
  ?payment_proc:string ->
  ?delivery_proc:string ->
  int ->
  params

(** [new_order_proc_for config] — the deployment morph: [new_order_sync]
    on [Sequential] deployments, [new_order_collect] on [Parallel]
    (shared-nothing-async) ones. Pass as [?new_order_proc] to {!params}. *)
val new_order_proc_for : Reactdb.Config.t -> string

(** [payment_proc_for config] — [payment] on [Sequential] deployments,
    [payment_collect] on [Parallel] ones. Pass as [?payment_proc] to
    {!params}. *)
val payment_proc_for : Reactdb.Config.t -> string

(** [delivery_proc_for config] — [delivery] on [Sequential] deployments,
    [delivery_collect] on [Parallel] ones. Pass as [?delivery_proc] to
    {!params}. *)
val delivery_proc_for : Reactdb.Config.t -> string

(** {1 Input generators}

    [home] is the 1-based warehouse a client worker is bound to (client
    affinity, §4.1.3). *)

val gen_new_order : Util.Rng.t -> params -> home:int -> clock:float -> Wl.request
val gen_payment : Util.Rng.t -> params -> home:int -> h_id:int -> Wl.request
val gen_order_status : Util.Rng.t -> params -> home:int -> Wl.request
val gen_delivery :
  ?proc:string -> Util.Rng.t -> home:int -> clock:float -> Wl.request
val gen_stock_level : Util.Rng.t -> params -> home:int -> Wl.request

(** The standard mix (45/43/4/4/4). [seq] must be shared across all workers
    of a run: it provides unique history ids and the logical clock. *)
val gen_mix : Util.Rng.t -> params -> home:int -> seq:int ref -> Wl.request
