(** YCSB with multi-key update transactions (Appendix C).

    Each key is modeled as a reactor holding a single 100-byte record. The
    [multi_update] transaction performs a read-modify-write on 10 keys: the
    paper invokes one update sub-transaction per key asynchronously, with
    the keys sorted so that remotely-deployed keys precede the local ones
    (keeping the transaction fork–join for the cost-model fit). Key choice
    is zipfian; the transaction's root reactor is one of the chosen keys. *)

open Util
open Reactor

let s_usertable =
  Storage.Schema.make ~name:"usertable"
    ~columns:[ ("ycsb_key", Value.TInt); ("field0", Value.TStr) ]
    ~key:[ "ycsb_key" ]

let read_proc ctx _args =
  match Query.Exec.get ctx.db "usertable" [| Wl.vi 0 |] with
  | Some row -> row.(1)
  | None -> abort "missing usertable row"

(* Read-modify-write: the read goes through the transaction context, so
   repeated updates of one key inside a transaction hit the write set. *)
let update_proc ctx args =
  let v = arg_str args 0 in
  let ok =
    Query.Exec.update_key ctx.db "usertable" [| Wl.vi 0 |] ~set:(fun row ->
        Query.Exec.seti row 1 (Wl.vs v))
  in
  if not ok then abort "missing usertable row";
  Value.Null

(* multi_update(value, keys...): invoked on one of the keys; updates each
   key, asynchronously for other reactors, inline for itself. *)
let multi_update ctx args =
  match args with
  | v :: keys ->
    List.iter
      (fun key ->
        ignore (ctx.call ~reactor:(Value.to_str key) ~proc:"update" ~args:[ v ]))
      keys;
    (* Own key last (the generator sorts it last): inlined. *)
    ignore (ctx.call ~reactor:ctx.self ~proc:"update" ~args:[ v ]);
    Value.Null
  | [] -> abort "multi_update: missing value"

(* multi_read(keys...): invoked on one of the keys; reads every key and
   returns the concatenated field lengths (a cheap digest the caller can
   compare across formulations). [fan_out] selects the sequential
   read-then-sync-per-key formulation or the parallel fan-out joined at a
   collect barrier; own key is read inline either way. *)
let multi_read ~fan_out ctx args =
  let own = Value.to_str (read_proc ctx []) in
  let remote_reads =
    if fan_out then
      ctx.collect
        (List.map
           (fun key ->
             ctx.call ~reactor:(Value.to_str key) ~proc:"read" ~args:[])
           args)
    else
      List.map
        (fun key ->
          (ctx.call ~reactor:(Value.to_str key) ~proc:"read" ~args:[]).get ())
        args
  in
  let total =
    List.fold_left
      (fun acc v -> acc + String.length (Value.to_str v))
      (String.length own) remote_reads
  in
  Wl.vi total

let key_type =
  rtype ~name:"YcsbKey" ~schemas:[ s_usertable ]
    ~procs:
      [ ("read", read_proc); ("update", update_proc);
        ("multi_update", multi_update);
        ("multi_read_seq", multi_read ~fan_out:false);
        ("multi_read_par", multi_read ~fan_out:true) ]
    ~readonly:[ "read"; "multi_read_seq"; "multi_read_par" ]
    ~morphs:[ ("multi_read_seq", "multi_read_par") ]
    ()

let key_name i = Printf.sprintf "k%d" i
let keys n = List.init n key_name

(** [decl ~keys:n ()] — one reactor per key, each loaded with a 100-byte
    record. *)
let decl ~keys:n () =
  let payload = String.make 100 'x' in
  let loader _k catalog =
    Wl.load catalog "usertable" [| Wl.vi 0; Wl.vs payload |]
  in
  Reactor.decl ~types:[ key_type ]
    ~reactors:(List.map (fun k -> (k, "YcsbKey")) (keys n))
    ~loaders:(List.map (fun k -> (k, loader k)) (keys n))
    ()

type params = {
  n_keys : int;
  txn_keys : int;  (** keys per multi_update (10 in the paper) *)
  zipf : Rng.Zipf.gen;
}

let params ?(txn_keys = 10) ~theta n_keys =
  { n_keys; txn_keys; zipf = Rng.Zipf.create ~n:n_keys ~theta }

(** Generate a multi_update request. [container_of] lets the generator sort
    remote keys before local ones relative to the root reactor (App. C). *)
let gen_multi_update rng p ~container_of =
  (* Draw [txn_keys] zipfian keys with duplicates, then collapse: under
     extreme skew the transaction accesses a single reactor (App. C notes
     exactly this at zipf 5.0, where repeated read-modify-writes hit the
     transaction's own write set). *)
  let distinct = Hashtbl.create 16 in
  for _ = 1 to p.txn_keys do
    Hashtbl.replace distinct (Rng.Zipf.next rng p.zipf) ()
  done;
  let ks = Hashtbl.fold (fun k () acc -> k :: acc) distinct [] in
  let ks = List.sort Int.compare ks in
  (* Root reactor: uniformly one of the chosen keys. *)
  let root = key_name (List.nth ks (Rng.int rng (List.length ks))) in
  let home = container_of root in
  let others = List.filter (fun k -> key_name k <> root) ks in
  let remote, local =
    List.partition (fun k -> container_of (key_name k) <> home) others
  in
  let ordered = remote @ local in
  Wl.request root "multi_update"
    (Wl.vs (String.make 100 'y') :: List.map (fun k -> Wl.vs (key_name k)) ordered)

(** Generate a multi-key read request morphed by the deployment: same key
    selection and remote-first ordering as {!gen_multi_update}, dispatched
    to [multi_read_seq] or [multi_read_par] according to [config]'s
    {!Reactdb.Config.morph} knob. *)
let gen_multi_read rng p config ~container_of =
  let distinct = Hashtbl.create 16 in
  for _ = 1 to p.txn_keys do
    Hashtbl.replace distinct (Rng.Zipf.next rng p.zipf) ()
  done;
  let ks = Hashtbl.fold (fun k () acc -> k :: acc) distinct [] in
  let ks = List.sort Int.compare ks in
  let root = key_name (List.nth ks (Rng.int rng (List.length ks))) in
  let home = container_of root in
  let others = List.filter (fun k -> key_name k <> root) ks in
  let remote, local =
    List.partition (fun k -> container_of (key_name k) <> home) others
  in
  let proc =
    match config.Reactdb.Config.morph with
    | Reactdb.Config.Sequential | Reactdb.Config.Auto -> "multi_read_seq"
    | Reactdb.Config.Parallel -> "multi_read_par"
  in
  Wl.request root proc (List.map (fun k -> Wl.vs (key_name k)) (remote @ local))
