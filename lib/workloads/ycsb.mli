(** YCSB with multi-key update transactions (Appendix C): each key is a
    reactor holding one 100-byte record; [multi_update] read-modify-writes
    a zipfian set of keys, asynchronously for keys on other containers. *)

(** The key reactor type. Procedures: [read], [update], [multi_update],
    [multi_read_seq] (read each key, synchronizing before the next),
    [multi_read_par] (fan every read out, join at a collect barrier —
    both return the total payload length across the keys read).

    The three read procedures are declared read-only (abort-free snapshot
    execution on backends with snapshots enabled); [multi_read_seq] →
    [multi_read_par] is declared as a morph pair for
    {!Reactdb.Config.Auto}. *)
val key_type : Reactor.rtype

val key_name : int -> string
val keys : int -> string list

(** [decl ~keys:n ()] — one loaded reactor per key. *)
val decl : keys:int -> unit -> Reactor.decl

type params = {
  n_keys : int;
  txn_keys : int;  (** zipfian draws per multi_update (10 in the paper) *)
  zipf : Util.Rng.Zipf.gen;
}

val params : ?txn_keys:int -> theta:float -> int -> params

(** Generate a multi_update request: [txn_keys] zipfian draws collapsed to
    their distinct set (under extreme skew a single reactor is accessed,
    as App. C notes); the root reactor is one of the keys, and remote keys
    are ordered before local ones relative to it — [container_of] supplies
    the placement. *)
val gen_multi_update :
  Util.Rng.t -> params -> container_of:(string -> int) -> Wl.request

(** Generate a multi-key read with the same key selection as
    {!gen_multi_update}, morphed by the deployment's
    {!Reactdb.Config.morph} knob: [multi_read_seq] on [Sequential]
    deployments, [multi_read_par] on [Parallel] ones. *)
val gen_multi_read :
  Util.Rng.t ->
  params -> Reactdb.Config.t -> container_of:(string -> int) -> Wl.request
