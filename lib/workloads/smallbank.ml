(** The extended Smallbank benchmark (§4.1.3, Appendices B and H).

    Each customer is a reactor encapsulating three relations (Fig. 20):
    [account] (name → customer id), [savings] and [checking] (customer id →
    balance). On top of the standard Smallbank mix we implement the paper's
    multi-transfer extension in its four formulations (§4.1.4):

    - [multi_transfer_sync] with [transfer_seq] — {e fully-sync};
    - [multi_transfer_sync] with [transfer_ovp] — {e partially-async}
      (asynchronous credit overlapped with the synchronous source debit);
    - [multi_transfer_fully_async] — all credits asynchronous, debits
      synchronous on the source;
    - [multi_transfer_opt] — asynchronous credits and a single combined
      debit.

    All four are faithful transcriptions of Figure 21. *)

open Util
open Reactor

let account_schema =
  Storage.Schema.make ~name:"account"
    ~columns:[ ("name", Value.TStr); ("cust_id", Value.TInt) ]
    ~key:[ "name" ]

let savings_schema =
  Storage.Schema.make ~name:"savings"
    ~columns:[ ("cust_id", Value.TInt); ("balance", Value.TFloat) ]
    ~key:[ "cust_id" ]

let checking_schema =
  Storage.Schema.make ~name:"checking"
    ~columns:[ ("cust_id", Value.TInt); ("balance", Value.TFloat) ]
    ~key:[ "cust_id" ]

(* Every procedure follows the benchmark's query footprint: look up the
   customer id in [account] first, then address [savings]/[checking] by it. *)
let cust_id ctx =
  match Query.Exec.get ctx.db "account" [| Wl.vs ctx.self |] with
  | Some row -> Value.to_int row.(1)
  | None -> abort "account row missing"

let balance_of ctx table cid =
  match Query.Exec.get ctx.db table [| Wl.vi cid |] with
  | Some row -> Value.to_number row.(1)
  | None -> abort (table ^ " row missing")

let set_balance ctx table cid v =
  ignore
    (Query.Exec.update_key ctx.db table [| Wl.vi cid |] ~set:(fun row ->
         Query.Exec.seti row 1 (Wl.vf v)))

(* transact_saving(amt): credit/debit the savings balance, aborting on
   overdraft (Fig. 21). *)
let transact_saving ctx args =
  let amt = arg_float args 0 in
  let cid = cust_id ctx in
  let bal = balance_of ctx "savings" cid in
  if bal +. amt < 0. then abort "savings overdraft";
  set_balance ctx "savings" cid (bal +. amt);
  Value.Null

let transact_checking ctx args =
  let amt = arg_float args 0 in
  let cid = cust_id ctx in
  let bal = balance_of ctx "checking" cid in
  if bal +. amt < 0. then abort "checking overdraft";
  set_balance ctx "checking" cid (bal +. amt);
  Value.Null

(* transfer(src, dst, amt) — invoked on the source reactor. [seq] decides
   whether the credit's future is forced before the debit (the
   env_seq_transfer switch of Fig. 21). *)
let transfer ~seq ctx args =
  let dst = arg_str args 0 and amt = arg_float args 1 in
  if amt <= 0. then abort "non-positive transfer";
  let credit =
    ctx.call ~reactor:dst ~proc:"transact_saving" ~args:[ Wl.vf amt ]
  in
  if seq then ignore (credit.get ());
  let debit =
    ctx.call ~reactor:ctx.self ~proc:"transact_saving" ~args:[ Wl.vf (-.amt) ]
  in
  ignore (debit.get ());
  Value.Null

(* multi_transfer_sync(amt, dsts...): one transfer per destination, each
   synchronized before the next (Fig. 21). [transfer_proc] selects the
   fully-sync or partially-async transfer body. *)
let multi_transfer_sync ~transfer_proc ctx args =
  match args with
  | amt :: dsts ->
    List.iter
      (fun dst ->
        let res =
          ctx.call ~reactor:ctx.self ~proc:transfer_proc ~args:[ dst; amt ]
        in
        ignore (res.get ()))
      dsts;
    Value.Null
  | [] -> abort "multi_transfer_sync: missing amount"

let multi_transfer_fully_async ctx args =
  match args with
  | amt :: dsts ->
    if Value.to_number amt <= 0. then abort "non-positive transfer";
    List.iter
      (fun dst ->
        ignore
          (ctx.call ~reactor:(Value.to_str dst) ~proc:"transact_saving"
             ~args:[ amt ]))
      dsts;
    List.iter
      (fun _ ->
        let res =
          ctx.call ~reactor:ctx.self ~proc:"transact_saving"
            ~args:[ Wl.vf (-.Value.to_number amt) ]
        in
        ignore (res.get ()))
      dsts;
    Value.Null
  | [] -> abort "multi_transfer_fully_async: missing amount"

let multi_transfer_opt ctx args =
  match args with
  | amt :: dsts ->
    if Value.to_number amt <= 0. then abort "non-positive transfer";
    List.iter
      (fun dst ->
        ignore
          (ctx.call ~reactor:(Value.to_str dst) ~proc:"transact_saving"
             ~args:[ amt ]))
      dsts;
    let total = Value.to_number amt *. float_of_int (List.length dsts) in
    let res =
      ctx.call ~reactor:ctx.self ~proc:"transact_saving"
        ~args:[ Wl.vf (-.total) ]
    in
    ignore (res.get ());
    Value.Null
  | [] -> abort "multi_transfer_opt: missing amount"

(* multi_transfer_collect(amt, dsts...): the Opt formulation written with
   an explicit fork–join — fan all credits out, debit the combined total
   from the source while they are in flight, then join the credit futures
   at a collect barrier. Issues exactly the same sub-calls as
   [multi_transfer_opt]; the difference is that credit aborts surface at
   the collect boundary instead of at implicit sync. *)
let multi_transfer_collect ctx args =
  match args with
  | amt :: dsts ->
    if Value.to_number amt <= 0. then abort "non-positive transfer";
    let credits =
      List.map
        (fun dst ->
          ctx.call ~reactor:(Value.to_str dst) ~proc:"transact_saving"
            ~args:[ amt ])
        dsts
    in
    let total = Value.to_number amt *. float_of_int (List.length dsts) in
    let debit =
      ctx.call ~reactor:ctx.self ~proc:"transact_saving"
        ~args:[ Wl.vf (-.total) ]
    in
    ignore (debit.get ());
    ignore (ctx.collect credits);
    Value.Null
  | [] -> abort "multi_transfer_collect: missing amount"

(* --- the standard Smallbank transaction mix --- *)

let balance_txn ctx _args =
  let cid = cust_id ctx in
  Wl.vf (balance_of ctx "savings" cid +. balance_of ctx "checking" cid)

let deposit_checking ctx args =
  let amt = arg_float args 0 in
  if amt < 0. then abort "negative deposit";
  let cid = cust_id ctx in
  set_balance ctx "checking" cid (balance_of ctx "checking" cid +. amt);
  Value.Null

let write_check ctx args =
  let amt = arg_float args 0 in
  let cid = cust_id ctx in
  let total = balance_of ctx "savings" cid +. balance_of ctx "checking" cid in
  let penalty = if amt > total then 1. else 0. in
  set_balance ctx "checking" cid
    (balance_of ctx "checking" cid -. amt -. penalty);
  Value.Null

(* amalgamate(dst): zero this customer's accounts, deposit the sum into the
   destination's checking account. *)
let amalgamate ctx args =
  let dst = arg_str args 0 in
  let cid = cust_id ctx in
  let total = balance_of ctx "savings" cid +. balance_of ctx "checking" cid in
  set_balance ctx "savings" cid 0.;
  set_balance ctx "checking" cid 0.;
  let f =
    ctx.call ~reactor:dst ~proc:"deposit_checking" ~args:[ Wl.vf total ]
  in
  ignore (f.get ());
  Value.Null

let send_payment ctx args =
  let dst = arg_str args 0 and amt = arg_float args 1 in
  let cid = cust_id ctx in
  let bal = balance_of ctx "checking" cid in
  if bal < amt then abort "insufficient checking funds";
  set_balance ctx "checking" cid (bal -. amt);
  let f =
    ctx.call ~reactor:dst ~proc:"deposit_checking" ~args:[ Wl.vf amt ]
  in
  ignore (f.get ());
  Value.Null

(* send_payment_multi(amt, dsts...): pay [amt] to each destination out of
   the source's checking account. The shared debit/overdraft logic runs on
   the source; [fan_out] selects the sequential formulation (credit each
   destination and synchronize before the next) or the parallel one (fan
   every credit out, then join at a collect barrier). *)
let send_payment_multi ~fan_out ctx args =
  match args with
  | amt :: dsts ->
    let amt = Value.to_number amt in
    if amt <= 0. then abort "non-positive payment";
    let cid = cust_id ctx in
    let total = amt *. float_of_int (List.length dsts) in
    let bal = balance_of ctx "checking" cid in
    if bal < total then abort "insufficient checking funds";
    set_balance ctx "checking" cid (bal -. total);
    if fan_out then
      ignore
        (ctx.collect
           (List.map
              (fun dst ->
                ctx.call ~reactor:(Value.to_str dst) ~proc:"deposit_checking"
                  ~args:[ Wl.vf amt ])
              dsts))
    else
      List.iter
        (fun dst ->
          let f =
            ctx.call ~reactor:(Value.to_str dst) ~proc:"deposit_checking"
              ~args:[ Wl.vf amt ]
          in
          ignore (f.get ()))
        dsts;
    Value.Null
  | [] -> abort "send_payment_multi: missing amount"

(* sum_all(custs...): this customer's total balance plus every listed
   customer's, gathered through a fan-out/collect of [balance] reads.
   Declared read-only: under snapshots the whole sum resolves against one
   frozen epoch, so summed over all customers it always equals the loaded
   total — the conservation audit for snapshot consistency. *)
let sum_all ctx args =
  let cid = cust_id ctx in
  let own = balance_of ctx "savings" cid +. balance_of ctx "checking" cid in
  let remote =
    ctx.collect
      (List.map
         (fun c -> ctx.call ~reactor:(Value.to_str c) ~proc:"balance" ~args:[])
         args)
  in
  Wl.vf (List.fold_left (fun acc v -> acc +. Value.to_number v) own remote)

(* Empty transaction for containerization-overhead measurements (App. F.3). *)
let noop _ctx _args = Value.Null

let customer_type =
  rtype ~name:"Customer"
    ~schemas:[ account_schema; savings_schema; checking_schema ]
    ~procs:
      [
        ("transact_saving", transact_saving);
        ("transact_checking", transact_checking);
        ("transfer_seq", transfer ~seq:true);
        ("transfer_ovp", transfer ~seq:false);
        ( "multi_transfer_sync",
          multi_transfer_sync ~transfer_proc:"transfer_seq" );
        ( "multi_transfer_partial",
          multi_transfer_sync ~transfer_proc:"transfer_ovp" );
        ("multi_transfer_fully_async", multi_transfer_fully_async);
        ("multi_transfer_opt", multi_transfer_opt);
        ("multi_transfer_collect", multi_transfer_collect);
        ("balance", balance_txn);
        ("deposit_checking", deposit_checking);
        ("write_check", write_check);
        ("amalgamate", amalgamate);
        ("send_payment", send_payment);
        ("send_payment_multi_seq", send_payment_multi ~fan_out:false);
        ("send_payment_multi_par", send_payment_multi ~fan_out:true);
        ("sum_all", sum_all);
        ("noop", noop);
      ]
    ~readonly:[ "balance"; "sum_all" ]
    ~morphs:
      [
        ("multi_transfer_sync", "multi_transfer_collect");
        ("send_payment_multi_seq", "send_payment_multi_par");
      ]
    ()

(* --- declaration --- *)

let customer_name i = Printf.sprintf "c%d" i
let customers n = List.init n customer_name

(** [decl ~customers:n ~initial] — [n] customer reactors, each loaded with
    [initial] in savings and in checking. *)
let decl ~customers:n ?(initial = 10_000.) () =
  let loader i catalog =
    Wl.load catalog "account" [| Wl.vs (customer_name i); Wl.vi i |];
    Wl.load catalog "savings" [| Wl.vi i; Wl.vf initial |];
    Wl.load catalog "checking" [| Wl.vi i; Wl.vf initial |]
  in
  Reactor.decl ~types:[ customer_type ]
    ~reactors:(List.map (fun c -> (c, "Customer")) (customers n))
    ~loaders:(List.init n (fun i -> (customer_name i, loader i)))
    ()

(** The four multi-transfer formulations of §4.1.4, plus the explicit
    fork–join [Collect] formulation (same sub-call fan-out as [Opt], joined
    with {!Reactor.ctx.collect}). *)
type formulation = Fully_sync | Partially_async | Fully_async | Opt | Collect

let formulation_proc = function
  | Fully_sync -> "multi_transfer_sync"
  | Partially_async -> "multi_transfer_partial"
  | Fully_async -> "multi_transfer_fully_async"
  | Opt -> "multi_transfer_opt"
  | Collect -> "multi_transfer_collect"

let formulation_name = function
  | Fully_sync -> "fully-sync"
  | Partially_async -> "partially-async"
  | Fully_async -> "fully-async"
  | Opt -> "opt"
  | Collect -> "collect"

(** Deployment morphing (Shah 2022): which multi-transfer formulation the
    deployment's {!Reactdb.Config.morph} knob selects — sequential
    deployments run fully-sync, parallel (shared-nothing-async) ones run
    the collect fan-out. Under [Auto] the builder emits the sequential
    formulation and the backend morphs per root via the declared
    {!Reactor.rtype.rt_morphs} pairs. *)
let formulation_for config =
  match config.Reactdb.Config.morph with
  | Reactdb.Config.Sequential | Reactdb.Config.Auto -> Fully_sync
  | Reactdb.Config.Parallel -> Collect

(** Build a multi-transfer request from explicit source and destinations. *)
let multi_transfer_request form ~src ~dests ~amount =
  Wl.request src (formulation_proc form)
    (Wl.vf amount :: List.map Wl.vs dests)

(** Multi-payment request morphed by the deployment: sequential
    deployments credit one destination at a time, parallel ones fan out
    and collect. *)
let send_payment_multi_request config ~src ~dests ~amount =
  let proc =
    match config.Reactdb.Config.morph with
    | Reactdb.Config.Sequential | Reactdb.Config.Auto ->
      "send_payment_multi_seq"
    | Reactdb.Config.Parallel -> "send_payment_multi_par"
  in
  Wl.request src proc (Wl.vf amount :: List.map Wl.vs dests)

(** Generator for the standard Smallbank mix over [n] customers (uniform
    choice). Mix weights follow the H-Store distribution: balance 15%,
    deposit-checking 15%, transact-savings 15%, write-check 15%,
    amalgamate 15%, send-payment 25%. *)
let gen_standard rng ~n =
  let c () = customer_name (Rng.int rng n) in
  let other excl =
    customer_name (Rng.pick_except rng n (int_of_string
      (String.sub excl 1 (String.length excl - 1))))
  in
  let amt () = Wl.vf (float_of_int (1 + Rng.int rng 100)) in
  match Rng.int rng 100 with
  | x when x < 15 -> Wl.request (c ()) "balance" []
  | x when x < 30 -> Wl.request (c ()) "deposit_checking" [ amt () ]
  | x when x < 45 -> Wl.request (c ()) "transact_saving" [ amt () ]
  | x when x < 60 -> Wl.request (c ()) "write_check" [ amt () ]
  | x when x < 75 ->
    let src = c () in
    Wl.request src "amalgamate" [ Wl.vs (other src) ]
  | _ ->
    let src = c () in
    Wl.request src "send_payment" [ Wl.vs (other src); Wl.vf 1. ]

(** Money-conserving variant of the standard mix, for runs audited with the
    conservation invariant: the standard mix's deposit/withdraw programs
    ([transact_saving], [deposit_checking], [write_check]) legitimately
    change the total, so they are replaced by [balance] reads, keeping the
    standard mix's 60% single-container / 40% cross-container split
    (amalgamate 15%, send-payment 25%). Every transaction either conserves
    the physical total or aborts. *)
let gen_conserving rng ~n =
  let c () = customer_name (Rng.int rng n) in
  let other excl =
    customer_name (Rng.pick_except rng n (int_of_string
      (String.sub excl 1 (String.length excl - 1))))
  in
  match Rng.int rng 100 with
  | x when x < 60 -> Wl.request (c ()) "balance" []
  | x when x < 75 ->
    let src = c () in
    Wl.request src "amalgamate" [ Wl.vs (other src) ]
  | _ ->
    let src = c () in
    Wl.request src "send_payment" [ Wl.vs (other src); Wl.vf 1. ]

(** Zipf-skewed, money-conserving mix with a tunable read fraction: with
    probability [read_frac] a [balance] read of a zipf-chosen customer
    (declared read-only, so it runs as an abort-free snapshot when
    snapshots are on); otherwise a conserving writer — amalgamate (3/8)
    or send-payment (5/8) — rooted at a zipf-chosen customer. The skew
    concentrates readers and writers on the same hot customers, which is
    what makes the OCC read path retry under contention. *)
let gen_conserving_zipf rng ~zipf ~n ~read_frac =
  let c () = customer_name (Rng.Zipf.next rng zipf) in
  let other excl =
    customer_name (Rng.pick_except rng n (int_of_string
      (String.sub excl 1 (String.length excl - 1))))
  in
  if Rng.float rng 1. < read_frac then Wl.request (c ()) "balance" []
  else if Rng.int rng 8 < 3 then begin
    let src = c () in
    Wl.request src "amalgamate" [ Wl.vs (other src) ]
  end
  else begin
    let src = c () in
    Wl.request src "send_payment" [ Wl.vs (other src); Wl.vf 1. ]
  end

(** Sum of all balances across all customer reactors — the conservation
    invariant used by tests (requires direct catalog access). *)
let total_money catalogs =
  List.fold_left
    (fun acc catalog ->
      let sum_tbl name =
        let tbl = Storage.Catalog.table catalog name in
        let s = ref 0. in
        Storage.Table.range tbl ~f:(fun r ->
            (if not r.Storage.Record.absent then
               match r.Storage.Record.data.(1) with
               | Value.Float f -> s := !s +. f
               | _ -> ());
            true);
        !s
      in
      acc +. sum_tbl "savings" +. sum_tbl "checking")
    0. catalogs
