(** TPC-C in the reactor model (§4.1.3).

    Each warehouse is a reactor encapsulating the nine TPC-C relations for
    its rows; the read-only [item] relation is replicated into every
    warehouse reactor (the standard choice for warehouse-partitioned TPC-C).
    All five transactions are implemented following the OLTP-Bench port the
    paper builds on, with its usual simplifications (no think times).

    Cross-reactor accesses arise exactly where the paper says they do:
    new-order items supplied by remote warehouses (grouped into one
    sub-transaction per distinct remote warehouse, invoked asynchronously
    and overlapped with home-warehouse processing) and payments by customers
    of remote warehouses. The [delay] argument reproduces the
    {e new-order-delay} variant of §4.3.2: µs of stock-replenishment
    computation per item, overlappable only across warehouses.

    Cardinalities are scaled-down but shape-preserving; see EXPERIMENTS.md. *)

open Util
open Reactor

type sizes = {
  districts : int;
  customers_per_district : int;
  items : int;
  preloaded_orders : int;  (** per district; last 30% undelivered *)
}

let default_sizes =
  { districts = 10; customers_per_district = 30; items = 100;
    preloaded_orders = 30 }

let small_sizes =
  { districts = 2; customers_per_district = 10; items = 20;
    preloaded_orders = 10 }

(* --- schemas --- *)

let s_warehouse =
  Storage.Schema.make ~name:"warehouse"
    ~columns:
      [ ("w_id", Value.TInt); ("name", Value.TStr); ("tax", Value.TFloat);
        ("ytd", Value.TFloat) ]
    ~key:[ "w_id" ]

let s_district =
  Storage.Schema.make ~name:"district"
    ~columns:
      [ ("d_id", Value.TInt); ("tax", Value.TFloat); ("ytd", Value.TFloat);
        ("next_o_id", Value.TInt) ]
    ~key:[ "d_id" ]

let s_customer =
  Storage.Schema.make ~name:"customer"
    ~columns:
      [ ("d_id", Value.TInt); ("c_id", Value.TInt); ("last", Value.TStr);
        ("first", Value.TStr); ("balance", Value.TFloat);
        ("ytd_payment", Value.TFloat); ("payment_cnt", Value.TInt);
        ("delivery_cnt", Value.TInt); ("credit", Value.TStr);
        ("data", Value.TStr) ]
    ~key:[ "d_id"; "c_id" ]

let s_history =
  Storage.Schema.make ~name:"history"
    ~columns:
      [ ("h_id", Value.TInt); ("d_id", Value.TInt); ("c_id", Value.TInt);
        ("c_w", Value.TStr); ("amount", Value.TFloat) ]
    ~key:[ "h_id" ]

let s_new_order =
  Storage.Schema.make ~name:"new_order"
    ~columns:[ ("d_id", Value.TInt); ("o_id", Value.TInt) ]
    ~key:[ "d_id"; "o_id" ]

let s_orders =
  Storage.Schema.make ~name:"orders"
    ~columns:
      [ ("d_id", Value.TInt); ("o_id", Value.TInt); ("c_id", Value.TInt);
        ("entry_d", Value.TFloat); ("carrier_id", Value.TInt);
        ("ol_cnt", Value.TInt); ("all_local", Value.TInt) ]
    ~key:[ "d_id"; "o_id" ]

let s_order_line =
  Storage.Schema.make ~name:"order_line"
    ~columns:
      [ ("d_id", Value.TInt); ("o_id", Value.TInt); ("ol_number", Value.TInt);
        ("i_id", Value.TInt); ("supply_w", Value.TStr);
        ("delivery_d", Value.TFloat); ("quantity", Value.TInt);
        ("amount", Value.TFloat); ("dist_info", Value.TStr) ]
    ~key:[ "d_id"; "o_id"; "ol_number" ]

let s_stock =
  Storage.Schema.make ~name:"stock"
    ~columns:
      [ ("i_id", Value.TInt); ("quantity", Value.TInt); ("ytd", Value.TInt);
        ("order_cnt", Value.TInt); ("remote_cnt", Value.TInt);
        ("dist_info", Value.TStr) ]
    ~key:[ "i_id" ]

let s_item =
  Storage.Schema.make ~name:"item"
    ~columns:
      [ ("i_id", Value.TInt); ("name", Value.TStr); ("price", Value.TFloat);
        ("data", Value.TStr) ]
    ~key:[ "i_id" ]

(* --- stored procedures --- *)

let geti = Value.to_int
let getf = Value.to_number
let gets = Value.to_str

(* Update one stock row per the spec's replenishment rule and return its
   dist_info. [delay] models stock-replenishment computation (§4.3.2). *)
let stock_update_one ctx ~i_id ~qty ~remote ~delay =
  if delay > 0. then ctx.db.Query.Exec.work delay;
  let dist = ref "" in
  let found =
    Query.Exec.update_key ctx.db "stock" [| Wl.vi i_id |] ~set:(fun row ->
        let s_qty = geti row.(1) in
        let s_qty' =
          if s_qty >= qty + 10 then s_qty - qty else s_qty - qty + 91
        in
        dist := gets row.(5);
        let row = Query.Exec.seti row 1 (Wl.vi s_qty') in
        let row = Query.Exec.seti row 2 (Wl.vi (geti row.(2) + qty)) in
        let row = Query.Exec.seti row 3 (Wl.vi (geti row.(3) + 1)) in
        if remote then Query.Exec.seti row 4 (Wl.vi (geti row.(4) + 1))
        else row)
  in
  if not found then abort "missing stock row";
  !dist

(* stock_updates(delay, k, (i_id qty) repeated):: remote leg of new-order; returns
   the dist_infos joined with '|'. *)
let stock_updates ctx args =
  let a = Array.of_list args in
  let delay = getf a.(0) in
  let k = geti a.(1) in
  let dists = ref [] in
  for j = 0 to k - 1 do
    let i_id = geti a.(2 + (2 * j)) and qty = geti a.(3 + (2 * j)) in
    dists := stock_update_one ctx ~i_id ~qty ~remote:true ~delay :: !dists
  done;
  Wl.vs (String.concat "|" (List.rev !dists))

let item_price ctx i_id =
  if i_id < 0 then abort "invalid item";
  match Query.Exec.get ctx.db "item" [| Wl.vi i_id |] with
  | Some row -> getf row.(2)
  | None -> abort "unknown item"

(* new_order(d_id, c_id, delay, now, n, (i_id supply qty) repeated) -> o_id.
   [mode] picks the program variant: [`Sync] forces each remote stock
   sub-transaction's future immediately after invocation (the
   shared-nothing-sync variant of §3.3); [`Async] defers each future's get
   until its order lines are inserted; [`Collect] joins all remote groups
   at one collect barrier after the local items are handled (the
   per-item-fan-out formulation of the intra-transaction-parallelism
   evaluation). All three issue identical sub-calls and insert identical
   rows in identical order. *)
let new_order ~mode ctx args =
  let a = Array.of_list args in
  let d_id = geti a.(0) and c_id = geti a.(1) in
  let delay = getf a.(2) and now = getf a.(3) in
  let n = geti a.(4) in
  let item_at j = (geti a.(5 + (3 * j)), gets a.(6 + (3 * j)), geti a.(7 + (3 * j))) in
  (* Home-warehouse reads: taxes, district sequence, customer. *)
  let _w_tax =
    match Query.Exec.get ctx.db "warehouse" [| Wl.vi 1 |] with
    | Some row -> getf row.(2)
    | None -> abort "missing warehouse row"
  in
  let o_id = ref 0 in
  let ok =
    Query.Exec.update_key ctx.db "district" [| Wl.vi d_id |] ~set:(fun row ->
        o_id := geti row.(3);
        Query.Exec.seti row 3 (Wl.vi (geti row.(3) + 1)))
  in
  if not ok then abort "missing district row";
  let o_id = !o_id in
  (match Query.Exec.get ctx.db "customer" [| Wl.vi d_id; Wl.vi c_id |] with
  | Some _ -> ()
  | None -> abort "missing customer row");
  let items = List.init n item_at in
  let all_local =
    if List.for_all (fun (_, s, _) -> s = ctx.self) items then 1 else 0
  in
  Query.Exec.insert ctx.db "orders"
    [| Wl.vi d_id; Wl.vi o_id; Wl.vi c_id; Wl.vf now; Wl.vi 0; Wl.vi n;
       Wl.vi all_local |];
  Query.Exec.insert ctx.db "new_order" [| Wl.vi d_id; Wl.vi o_id |];
  (* Group remote items by supplying warehouse; launch one asynchronous
     sub-transaction per distinct remote warehouse, then handle local items
     while those are in flight. *)
  let numbered = List.mapi (fun j it -> (j + 1, it)) items in
  let remote_groups = Hashtbl.create 4 in
  let locals = ref [] in
  List.iter
    (fun (ol, (i_id, supply, qty)) ->
      if supply = ctx.self then locals := (ol, i_id, qty) :: !locals
      else
        Hashtbl.replace remote_groups supply
          ((ol, i_id, qty)
          :: Option.value ~default:[] (Hashtbl.find_opt remote_groups supply)))
    numbered;
  let futures =
    Hashtbl.fold
      (fun supply group acc ->
        let group = List.rev group in
        let args =
          Wl.vf delay
          :: Wl.vi (List.length group)
          :: List.concat_map (fun (_, i_id, qty) -> [ Wl.vi i_id; Wl.vi qty ]) group
        in
        let f = ctx.call ~reactor:supply ~proc:"stock_updates" ~args in
        (match mode with `Sync -> ignore (f.get ()) | `Async | `Collect -> ());
        (supply, group, f) :: acc)
      remote_groups []
  in
  let insert_ol ~ol ~i_id ~supply ~qty ~dist =
    let price = item_price ctx i_id in
    Query.Exec.insert ctx.db "order_line"
      [| Wl.vi d_id; Wl.vi o_id; Wl.vi ol; Wl.vi i_id; Wl.vs supply; Wl.vf 0.;
         Wl.vi qty; Wl.vf (price *. float_of_int qty); Wl.vs dist |]
  in
  List.iter
    (fun (ol, i_id, qty) ->
      let dist = stock_update_one ctx ~i_id ~qty ~remote:false ~delay in
      insert_ol ~ol ~i_id ~supply:ctx.self ~qty ~dist)
    (List.rev !locals);
  let insert_group (supply, group) res =
    let dists = String.split_on_char '|' (gets res) in
    List.iter2
      (fun (ol, i_id, qty) dist -> insert_ol ~ol ~i_id ~supply ~qty ~dist)
      group dists
  in
  (match mode with
  | `Collect ->
    (* One barrier over every remote group: out-of-order completion, then
       order lines inserted in the same (group) order as the other modes. *)
    let results = ctx.collect (List.map (fun (_, _, f) -> f) futures) in
    List.iter2
      (fun (supply, group, _) res -> insert_group (supply, group) res)
      futures results
  | `Sync | `Async ->
    List.iter
      (fun (supply, group, future) ->
        insert_group (supply, group) (future.get ()))
      futures);
  Wl.vi o_id

(* Select a customer by last name through the (d_id, last) secondary index:
   all matches ordered by first name, take the middle one (spec clause
   2.5.2.2). *)
let customer_by_last ctx d_id last =
  let rows =
    Query.Exec.scan_index ctx.db "customer" ~index:"by_last"
      ~prefix:[| Wl.vi d_id; Wl.vs last |]
      ()
  in
  let rows = List.sort (fun a b -> Value.compare a.(3) b.(3)) rows in
  match rows with
  | [] -> abort "no customer with that last name"
  | _ -> List.nth rows (List.length rows / 2)

(* payment_customer(d_id, c_id, c_last, amount) -> c_id actually charged.
   Runs on the customer's home warehouse (possibly remote to the payment). *)
let payment_customer ctx args =
  let d_id = geti (arg args 0) in
  let c_id = geti (arg args 1) in
  let c_last = gets (arg args 2) in
  let amount = getf (arg args 3) in
  let c_id =
    if c_last = "" then c_id else geti (customer_by_last ctx d_id c_last).(1)
  in
  let ok =
    Query.Exec.update_key ctx.db "customer" [| Wl.vi d_id; Wl.vi c_id |]
      ~set:(fun row ->
        let row = Query.Exec.seti row 4 (Wl.vf (getf row.(4) -. amount)) in
        let row = Query.Exec.seti row 5 (Wl.vf (getf row.(5) +. amount)) in
        Query.Exec.seti row 6 (Wl.vi (geti row.(6) + 1)))
  in
  if not ok then abort "missing customer row";
  Wl.vi c_id

(* payment(h_id, d_id, c_id, c_last, amount, cust_warehouse). [collect]
   selects the join style: the plain formulation forces the customer
   update's future directly, the Collect formulation joins it at an
   explicit collect barrier after the home-warehouse bookkeeping — the
   fork–join shape the cost model prices as a node with one asynchronous
   child. Both issue identical sub-calls and write identical rows. *)
let payment ~collect ctx args =
  let a = Array.of_list args in
  let h_id = geti a.(0) and d_id = geti a.(1) and c_id = geti a.(2) in
  let c_last = gets a.(3) and amount = getf a.(4) in
  let cust_w = gets a.(5) in
  (* Launch the (possibly remote) customer update first so it overlaps the
     home-warehouse bookkeeping. A call to self is inlined. *)
  let fcust =
    ctx.call ~reactor:cust_w ~proc:"payment_customer"
      ~args:[ Wl.vi d_id; Wl.vi c_id; Wl.vs c_last; Wl.vf amount ]
  in
  let ok =
    Query.Exec.update_key ctx.db "warehouse" [| Wl.vi 1 |] ~set:(fun row ->
        Query.Exec.seti row 3 (Wl.vf (getf row.(3) +. amount)))
  in
  if not ok then abort "missing warehouse row";
  let ok =
    Query.Exec.update_key ctx.db "district" [| Wl.vi d_id |] ~set:(fun row ->
        Query.Exec.seti row 2 (Wl.vf (getf row.(2) +. amount)))
  in
  if not ok then abort "missing district row";
  let charged =
    if collect then
      match ctx.collect [ fcust ] with
      | [ v ] -> geti v
      | _ -> abort "payment_collect: collect arity"
    else geti (fcust.get ())
  in
  Query.Exec.insert ctx.db "history"
    [| Wl.vi h_id; Wl.vi d_id; Wl.vi charged; Wl.vs cust_w; Wl.vf amount |];
  Value.Null

(* order_status(d_id, c_id, c_last) -> balance of last order's customer *)
let order_status ctx args =
  let d_id = geti (arg args 0) in
  let c_id = geti (arg args 1) in
  let c_last = gets (arg args 2) in
  let cust =
    if c_last = "" then
      match Query.Exec.get ctx.db "customer" [| Wl.vi d_id; Wl.vi c_id |] with
      | Some row -> row
      | None -> abort "missing customer row"
    else customer_by_last ctx d_id c_last
  in
  let c_id = geti cust.(1) in
  (match
     Query.Exec.scan_index ctx.db "orders" ~index:"by_cust"
       ~prefix:[| Wl.vi d_id; Wl.vi c_id |]
       ~rev:true ~limit:1 ()
   with
  | order :: _ ->
    let o_id = geti order.(1) in
    ignore
      (Query.Exec.scan ctx.db "order_line" ~prefix:[| Wl.vi d_id; Wl.vi o_id |] ())
  | [] -> ());
  Wl.vf (getf cust.(4))

(* One district's delivery leg: deliver its oldest undelivered order, if
   any. Shared by both delivery formulations. *)
let deliver_one ctx ~d_id ~carrier ~now =
  match Query.Exec.first ctx.db "new_order" ~prefix:[| Wl.vi d_id |] () with
  | None -> 0
  | Some no ->
    let o_id = geti no.(1) in
    ignore (Query.Exec.delete_key ctx.db "new_order" [| Wl.vi d_id; Wl.vi o_id |]);
    let c_id = ref 0 in
    let ok =
      Query.Exec.update_key ctx.db "orders" [| Wl.vi d_id; Wl.vi o_id |]
        ~set:(fun row ->
          c_id := geti row.(2);
          Query.Exec.seti row 4 (Wl.vi carrier))
    in
    if not ok then abort "missing order row";
    let total = ref 0. in
    ignore
      (Query.Exec.update ctx.db "order_line"
         ~prefix:[| Wl.vi d_id; Wl.vi o_id |]
         ~set:(fun row ->
           total := !total +. getf row.(7);
           Query.Exec.seti row 5 (Wl.vf now))
         ());
    let ok =
      Query.Exec.update_key ctx.db "customer" [| Wl.vi d_id; Wl.vi !c_id |]
        ~set:(fun row ->
          let row = Query.Exec.seti row 4 (Wl.vf (getf row.(4) +. !total)) in
          Query.Exec.seti row 7 (Wl.vi (geti row.(7) + 1)))
    in
    if not ok then abort "missing customer row";
    1

(* delivery(carrier, now) -> number of districts with a delivered order *)
let delivery ctx args =
  let carrier = geti (arg args 0) in
  let now = getf (arg args 1) in
  let districts = Query.Exec.scan ctx.db "district" () in
  Wl.vi
    (List.fold_left
       (fun acc drow ->
         acc + deliver_one ctx ~d_id:(geti drow.(0)) ~carrier ~now)
       0 districts)

(* deliver_district(d_id, carrier, now) -> 0/1: the per-district leg as a
   procedure, the fan-out unit of [delivery_collect]. *)
let deliver_district ctx args =
  let d_id = geti (arg args 0) in
  let carrier = geti (arg args 1) in
  let now = getf (arg args 2) in
  Wl.vi (deliver_one ctx ~d_id ~carrier ~now)

(* delivery_collect(carrier, now): the Collect formulation of delivery —
   one [deliver_district] sub-call per district, joined at a single collect
   barrier. Self-calls are inlined on both backends, so the formulations
   deliver identical orders in identical district order; the explicit
   fork–join shape is what the morph router and cost model act on. *)
let delivery_collect ctx args =
  let carrier = arg args 0 in
  let now = arg args 1 in
  let districts = Query.Exec.scan ctx.db "district" () in
  let futures =
    List.map
      (fun drow ->
        ctx.call ~reactor:ctx.self ~proc:"deliver_district"
          ~args:[ drow.(0); carrier; now ])
      districts
  in
  Wl.vi
    (List.fold_left
       (fun acc v -> acc + geti v)
       0 (ctx.collect futures))

(* stock_level(d_id, threshold) -> count of recent items under threshold *)
let stock_level ctx args =
  let d_id = geti (arg args 0) in
  let threshold = geti (arg args 1) in
  let next_o_id =
    match Query.Exec.get ctx.db "district" [| Wl.vi d_id |] with
    | Some row -> geti row.(3)
    | None -> abort "missing district row"
  in
  let lo = Stdlib.max 1 (next_o_id - 20) in
  let lines =
    Query.Exec.scan ctx.db "order_line"
      ~lo:[| Wl.vi d_id; Wl.vi lo |]
      ~hi:[| Wl.vi d_id; Wl.vi (next_o_id - 1); Wl.vi max_int |]
      ()
  in
  let seen = Hashtbl.create 32 in
  List.iter (fun row -> Hashtbl.replace seen (geti row.(3)) ()) lines;
  let low = ref 0 in
  Hashtbl.iter
    (fun i_id () ->
      match Query.Exec.get ctx.db "stock" [| Wl.vi i_id |] with
      | Some srow -> if geti srow.(1) < threshold then incr low
      | None -> ())
    seen;
  Wl.vi !low

let warehouse_type =
  rtype ~name:"Warehouse"
    ~schemas:
      [ s_warehouse; s_district; s_customer; s_history; s_new_order; s_orders;
        s_order_line; s_stock; s_item ]
    ~indexes:
      [ ("customer", [ ("by_last", [ "d_id"; "last" ]) ]);
        ("orders", [ ("by_cust", [ "d_id"; "c_id" ]) ]) ]
    ~procs:
      [
        ("new_order", new_order ~mode:`Async);
        ("new_order_sync", new_order ~mode:`Sync);
        ("new_order_collect", new_order ~mode:`Collect);
        ("stock_updates", stock_updates);
        ("payment", payment ~collect:false);
        ("payment_collect", payment ~collect:true);
        ("payment_customer", payment_customer);
        ("order_status", order_status);
        ("delivery", delivery);
        ("deliver_district", deliver_district);
        ("delivery_collect", delivery_collect);
        ("stock_level", stock_level);
      ]
    ~readonly:[ "order_status"; "stock_level" ]
    ~morphs:
      [
        ("new_order_sync", "new_order_collect");
        ("payment", "payment_collect");
        ("delivery", "delivery_collect");
      ]
    ()

(* --- loading --- *)

let warehouse_name i = Printf.sprintf "w%d" i
let warehouses n = List.init n (fun i -> warehouse_name (i + 1))

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION";
     "EING" |]

let last_name num =
  syllables.(num / 100 mod 10) ^ syllables.(num / 10 mod 10)
  ^ syllables.(num mod 10)

let load_warehouse sizes seed _w catalog =
  let rng = Rng.create seed in
  Wl.load catalog "warehouse"
    [| Wl.vi 1; Wl.vs (Rng.alphastring rng 8); Wl.vf (Rng.float rng 0.2);
       Wl.vf 300_000. |];
  for i = 1 to sizes.items do
    Wl.load catalog "item"
      [| Wl.vi i; Wl.vs (Rng.alphastring rng 12);
         Wl.vf (1. +. Rng.float rng 99.); Wl.vs (Rng.alphastring rng 20) |];
    Wl.load catalog "stock"
      [| Wl.vi i; Wl.vi (10 + Rng.int rng 91); Wl.vi 0; Wl.vi 0; Wl.vi 0;
         Wl.vs (Rng.alphastring rng 24) |]
  done;
  for d = 1 to sizes.districts do
    Wl.load catalog "district"
      [| Wl.vi d; Wl.vf (Rng.float rng 0.2); Wl.vf 30_000.;
         Wl.vi (sizes.preloaded_orders + 1) |];
    for c = 1 to sizes.customers_per_district do
      Wl.load catalog "customer"
        [| Wl.vi d; Wl.vi c; Wl.vs (last_name (c - 1));
           Wl.vs (Rng.alphastring rng 8); Wl.vf (-10.); Wl.vf 10.; Wl.vi 1;
           Wl.vi 0; Wl.vs (if Rng.int rng 10 = 0 then "BC" else "GC");
           Wl.vs (Rng.alphastring rng 30) |]
    done;
    (* Preloaded orders: the most recent 30% are undelivered. *)
    let delivered_upto = sizes.preloaded_orders * 7 / 10 in
    for o = 1 to sizes.preloaded_orders do
      let c = 1 + Rng.int rng sizes.customers_per_district in
      let ol_cnt = 5 + Rng.int rng 11 in
      let carrier = if o <= delivered_upto then 1 + Rng.int rng 10 else 0 in
      Wl.load catalog "orders"
        [| Wl.vi d; Wl.vi o; Wl.vi c; Wl.vf 0.; Wl.vi carrier; Wl.vi ol_cnt;
           Wl.vi 1 |];
      if carrier = 0 then Wl.load catalog "new_order" [| Wl.vi d; Wl.vi o |];
      for ol = 1 to ol_cnt do
        let i_id = 1 + Rng.int rng sizes.items in
        Wl.load catalog "order_line"
          [| Wl.vi d; Wl.vi o; Wl.vi ol; Wl.vi i_id; Wl.vs (warehouse_name 1);
             Wl.vf (if carrier = 0 then 0. else 1.); Wl.vi (1 + Rng.int rng 10);
             Wl.vf (Rng.float rng 9_999.); Wl.vs (Rng.alphastring rng 24) |]
      done
    done
  done

(** [decl ~warehouses:n ~sizes ()] — [n] warehouse reactors, fully loaded. *)
let decl ~warehouses:n ?(sizes = default_sizes) () =
  let ws = warehouses n in
  Reactor.decl ~types:[ warehouse_type ]
    ~reactors:(List.map (fun w -> (w, "Warehouse")) ws)
    ~loaders:(List.mapi (fun i w -> (w, load_warehouse sizes (7_000 + i) w)) ws)
    ()

(* --- input generation --- *)

(** How new-order picks remote items: [Per_item p] draws each item from a
    remote warehouse with probability [p] (§4.3.2); [One_item p] makes the
    whole transaction cross-reactor with probability [p] by drawing exactly
    one item remotely (App. E's x-axis). *)
type remote_mode = Per_item of float | One_item of float

type params = {
  n_warehouses : int;
  sizes : sizes;
  remote_mode : remote_mode;
  remote_payment_prob : float;  (** probability the customer is remote *)
  delay_lo : float;
  delay_hi : float;  (** per-item stock-replenishment delay range, µs *)
  sync_new_order : bool;  (** use the new_order_sync program variant *)
  no_proc : string;  (** new-order procedure generated requests invoke *)
  pay_proc : string;  (** payment procedure generated requests invoke *)
  dlv_proc : string;  (** delivery procedure generated requests invoke *)
}

let params ?(sizes = default_sizes) ?(remote_mode = Per_item 0.01)
    ?(remote_payment_prob = 0.15) ?(delay_lo = 0.) ?(delay_hi = 0.)
    ?(sync_new_order = false) ?new_order_proc ?(payment_proc = "payment")
    ?(delivery_proc = "delivery") n_warehouses =
  let no_proc =
    match new_order_proc with
    | Some p -> p
    | None -> if sync_new_order then "new_order_sync" else "new_order"
  in
  { n_warehouses; sizes; remote_mode; remote_payment_prob; delay_lo;
    delay_hi; sync_new_order; no_proc; pay_proc = payment_proc;
    dlv_proc = delivery_proc }

(** The new-order variant a deployment morph selects: sequential
    deployments run [new_order_sync], parallel (shared-nothing-async) ones
    run the collect fan-out. *)
let new_order_proc_for config =
  match config.Reactdb.Config.morph with
  | Reactdb.Config.Sequential | Reactdb.Config.Auto -> "new_order_sync"
  | Reactdb.Config.Parallel -> "new_order_collect"

(** The payment variant a deployment morph selects: the plain future-get
    join on sequential deployments, the collect-barrier join on parallel
    ones. *)
let payment_proc_for config =
  match config.Reactdb.Config.morph with
  | Reactdb.Config.Sequential | Reactdb.Config.Auto -> "payment"
  | Reactdb.Config.Parallel -> "payment_collect"

(** The delivery variant a deployment morph selects: the in-line district
    loop on sequential deployments, the per-district fan-out/collect on
    parallel ones. *)
let delivery_proc_for config =
  match config.Reactdb.Config.morph with
  | Reactdb.Config.Sequential | Reactdb.Config.Auto -> "delivery"
  | Reactdb.Config.Parallel -> "delivery_collect"

let nurand_customer rng sizes =
  let c = sizes.customers_per_district in
  if c <= 1 then 1
  else 1 + Rng.nurand rng ~a:(Stdlib.min 1023 (c - 1)) ~c:259 ~x:0 ~y:(c - 1)

let nurand_item rng sizes =
  let n = sizes.items in
  if n <= 1 then 1
  else 1 + Rng.nurand rng ~a:(Stdlib.min 8191 (n - 1)) ~c:7911 ~x:0 ~y:(n - 1)

let pick_remote_warehouse rng p ~home =
  if p.n_warehouses <= 1 then home
  else 1 + Rng.pick_except rng p.n_warehouses (home - 1)

(** New-order request for home warehouse [home] (1-based). [clock] supplies
    the order entry timestamp. *)
let gen_new_order rng p ~home ~clock =
  let d_id = 1 + Rng.int rng p.sizes.districts in
  let c_id = nurand_customer rng p.sizes in
  let n = 5 + Rng.int rng 11 in
  let delay =
    if p.delay_hi <= 0. then 0.
    else p.delay_lo +. Rng.float rng (p.delay_hi -. p.delay_lo)
  in
  let remote_slot =
    match p.remote_mode with
    | One_item prob when Rng.float rng 1. < prob -> Some (Rng.int rng n)
    | One_item _ -> None
    | Per_item _ -> None
  in
  let items =
    List.concat
      (List.init n (fun slot ->
           let i_id = nurand_item rng p.sizes in
           let remote =
             match p.remote_mode with
             | Per_item prob -> Rng.float rng 1. < prob
             | One_item _ -> remote_slot = Some slot
           in
           let supply =
             if remote then warehouse_name (pick_remote_warehouse rng p ~home)
             else warehouse_name home
           in
           [ Wl.vi i_id; Wl.vs supply; Wl.vi (1 + Rng.int rng 10) ]))
  in
  Wl.request (warehouse_name home) p.no_proc
    (Wl.vi d_id :: Wl.vi c_id :: Wl.vf delay :: Wl.vf clock :: Wl.vi n :: items)

let gen_payment rng p ~home ~h_id =
  let d_id = 1 + Rng.int rng p.sizes.districts in
  let by_name = Rng.int rng 100 < 60 in
  let c_id = nurand_customer rng p.sizes in
  let c_last = if by_name then last_name (c_id - 1) else "" in
  let cust_w =
    if Rng.float rng 1. < p.remote_payment_prob then
      warehouse_name (pick_remote_warehouse rng p ~home)
    else warehouse_name home
  in
  let amount = 1. +. Rng.float rng 4_999. in
  Wl.request (warehouse_name home) p.pay_proc
    [ Wl.vi h_id; Wl.vi d_id; Wl.vi c_id; Wl.vs c_last; Wl.vf amount;
      Wl.vs cust_w ]

let gen_order_status rng p ~home =
  let d_id = 1 + Rng.int rng p.sizes.districts in
  let by_name = Rng.int rng 100 < 60 in
  let c_id = nurand_customer rng p.sizes in
  let c_last = if by_name then last_name (c_id - 1) else "" in
  Wl.request (warehouse_name home) "order_status"
    [ Wl.vi d_id; Wl.vi c_id; Wl.vs c_last ]

let gen_delivery ?(proc = "delivery") rng ~home ~clock =
  Wl.request (warehouse_name home) proc
    [ Wl.vi (1 + Rng.int rng 10); Wl.vf clock ]

let gen_stock_level rng p ~home =
  let d_id = 1 + Rng.int rng p.sizes.districts in
  Wl.request (warehouse_name home) "stock_level"
    [ Wl.vi d_id; Wl.vi (10 + Rng.int rng 11) ]

(** The standard TPC-C mix: 45% new-order, 43% payment, 4% order-status,
    4% delivery, 4% stock-level. [seq] provides unique ids (history keys)
    and the logical clock. *)
let gen_mix rng p ~home ~seq =
  incr seq;
  let clock = float_of_int !seq in
  match Rng.int rng 100 with
  | x when x < 45 -> gen_new_order rng p ~home ~clock
  | x when x < 88 -> gen_payment rng p ~home ~h_id:!seq
  | x when x < 92 -> gen_order_status rng p ~home
  | x when x < 96 -> gen_delivery ~proc:p.dlv_proc rng ~home ~clock
  | _ -> gen_stock_level rng p ~home
