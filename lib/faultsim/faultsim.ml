(* Seeded crash injection + engine-free recovery, for the
   recovery-equivalence property suite (see faultsim.mli). *)

type fault =
  | Truncate_entries of int
  | Truncate_bytes of int
  | Corrupt_byte of { off : int; xor : int }

let pp_fault = function
  | Truncate_entries n -> Printf.sprintf "truncate to %d entries" n
  | Truncate_bytes n -> Printf.sprintf "truncate to %d bytes" n
  | Corrupt_byte { off; xor } ->
    Printf.sprintf "corrupt byte %d (xor 0x%02x)" off xor

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_whole path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let file_size path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)

let choose rng ~path =
  let size = file_size path in
  match Util.Rng.int rng 3 with
  | 0 ->
    let entries, _ = Wal.read_file_tolerant path in
    Truncate_entries (Util.Rng.int rng (List.length entries + 1))
  | 1 -> Truncate_bytes (Util.Rng.int rng (size + 1))
  | _ ->
    if size = 0 then Truncate_bytes 0
    else
      Corrupt_byte
        { off = Util.Rng.int rng size; xor = 1 + Util.Rng.int rng 255 }

let inject fault ~src ~dst =
  let content = read_whole src in
  let faulted =
    match fault with
    | Truncate_bytes n -> String.sub content 0 (min n (String.length content))
    | Truncate_entries n ->
      (* Cut after the [n]-th record terminator. *)
      let pos = ref 0 and cut = ref 0 in
      (try
         for _ = 1 to n do
           match String.index_from_opt content !pos '\n' with
           | Some nl ->
             cut := nl + 1;
             pos := nl + 1
           | None ->
             cut := String.length content;
             raise Exit
         done
       with Exit -> ());
      String.sub content 0 !cut
    | Corrupt_byte { off; xor } ->
      if off >= String.length content then content
      else
        String.mapi
          (fun i c -> if i = off then Char.chr (Char.code c lxor xor) else c)
          content
  in
  write_whole dst faulted

(* ---- engine-free database images ---- *)

let fresh_catalogs decl =
  Reactor.validate decl;
  let cats =
    List.map
      (fun (name, tyname) ->
        let rt = Reactor.find_type decl tyname in
        let catalog = Storage.Catalog.create () in
        List.iter
          (fun schema ->
            let secondaries =
              List.assoc_opt schema.Storage.Schema.sname rt.Reactor.rt_indexes
            in
            ignore (Storage.Catalog.create_table ?secondaries catalog schema))
          rt.Reactor.rt_schemas;
        (name, catalog))
      decl.Reactor.reactors
  in
  List.iter
    (fun (rname, loader) -> loader (List.assoc rname cats))
    decl.Reactor.loaders;
  cats

let catalog_of cats name =
  match List.assoc_opt name cats with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Faultsim: unknown reactor %S" name)

type state = (string * string * Util.Value.t array list) list

let snapshot catalogs =
  let tables =
    List.concat_map
      (fun (rname, catalog) ->
        List.map
          (fun (tname, tbl) ->
            let rows = ref [] in
            Storage.Table.range tbl ~f:(fun r ->
                if not r.Storage.Record.absent then
                  rows := Array.copy r.Storage.Record.data :: !rows;
                true);
            (rname, tname, List.rev !rows))
          (Storage.Catalog.tables catalog))
      catalogs
  in
  List.sort
    (fun (r1, t1, _) (r2, t2, _) -> Stdlib.compare (r1, t1) (r2, t2))
    tables

let pp_row row =
  "("
  ^ String.concat ", "
      (Array.to_list (Array.map Util.Value.to_string row))
  ^ ")"

let diff a b =
  let tables =
    List.sort_uniq Stdlib.compare
      (List.map (fun (r, t, _) -> (r, t)) a
      @ List.map (fun (r, t, _) -> (r, t)) b)
  in
  let rows_of st r t =
    match List.find_opt (fun (r', t', _) -> r' = r && t' = t) st with
    | Some (_, _, rows) -> Some rows
    | None -> None
  in
  let rec first_diff = function
    | [] -> None
    | (r, t) :: rest -> (
      match (rows_of a r t, rows_of b r t) with
      | None, _ | _, None ->
        Some (Printf.sprintf "%s.%s present on one side only" r t)
      | Some ra, Some rb ->
        if List.length ra <> List.length rb then
          Some
            (Printf.sprintf "%s.%s: %d rows vs %d rows" r t (List.length ra)
               (List.length rb))
        else (
          match
            List.find_opt
              (fun (x, y) -> not (Array.for_all2 Util.Value.equal x y))
              (List.combine ra rb)
          with
          | Some (x, y) ->
            Some
              (Printf.sprintf "%s.%s: row %s vs %s" r t (pp_row x) (pp_row y))
          | None -> first_diff rest))
  in
  first_diff tables

let check_secondaries catalogs =
  let err = ref None in
  let fail m = if !err = None then err := Some m in
  List.iter
    (fun (rname, catalog) ->
      List.iter
        (fun (tname, tbl) ->
          let live = ref [] and n_live = ref 0 in
          Storage.Table.range tbl ~f:(fun r ->
              if not r.Storage.Record.absent then begin
                live := r :: !live;
                incr n_live
              end;
              true);
          List.iter
            (fun (sec : Storage.Table.secondary) ->
              let n_sec = ref 0 in
              Storage.Table.scan_secondary tbl
                ~index:sec.Storage.Table.sec_name ~f:(fun r ->
                  if not r.Storage.Record.absent then incr n_sec;
                  true);
              if !n_sec <> !n_live then
                fail
                  (Printf.sprintf
                     "%s.%s secondary %s: %d entries vs %d live rows" rname
                     tname sec.Storage.Table.sec_name !n_sec !n_live);
              List.iter
                (fun (r : Storage.Record.t) ->
                  let key =
                    Storage.Table.sec_key_of tbl sec r.Storage.Record.data
                  in
                  let lo, hi = Storage.Table.key_prefix_bounds key in
                  let found = ref false in
                  Storage.Table.scan_secondary tbl ~lo ~hi
                    ~index:sec.Storage.Table.sec_name ~f:(fun r' ->
                      if r'.Storage.Record.rid = r.Storage.Record.rid then
                        found := true;
                      not !found);
                  if not !found then
                    fail
                      (Printf.sprintf
                         "%s.%s secondary %s: live row %s unreachable under \
                          its current key"
                         rname tname sec.Storage.Table.sec_name
                         (pp_row r.Storage.Record.data)))
                !live)
            tbl.Storage.Table.secondaries)
        (Storage.Catalog.tables catalog))
    catalogs;
  match !err with None -> Ok () | Some m -> Error m

(* ---- recovery ---- *)

type recovery = {
  rc_catalogs : (string * Storage.Catalog.t) list;
  rc_entries : Wal.entry list;
  rc_tail : Wal.tail;
  rc_checkpoint : Checkpoint.t option;
  rc_restored : int;
  rc_replayed : int;
  rc_placements : (string * int) list;
  rc_note : string;
}

(* Recovered placement: fold the surviving [Migrate] records in TID order —
   the last move per reactor wins, exactly as the engines applied them.
   Reactors never migrated are absent (they keep the config placement). *)
let placements_of entries =
  let ordered =
    List.sort (fun a b -> Int.compare a.Wal.le_tid b.Wal.le_tid) entries
  in
  let tbl = Hashtbl.create 8 and order = ref [] in
  List.iter
    (fun e ->
      List.iter
        (function
          | Wal.Migrate { reactor; dst } ->
            if not (Hashtbl.mem tbl reactor) then order := reactor :: !order;
            Hashtbl.replace tbl reactor dst
          | Wal.Put _ | Wal.Del _ -> ())
        e.Wal.le_writes)
    ordered;
  List.rev_map (fun r -> (r, Hashtbl.find tbl r)) !order

let recover ?checkpoint ~log decl =
  let cats = fresh_catalogs decl in
  let cat = catalog_of cats in
  let entries, tail = Wal.read_file_tolerant log in
  let placements = placements_of entries in
  let log_only note =
    let replayed = Wal.replay entries ~catalog_of:cat in
    {
      rc_catalogs = cats;
      rc_entries = entries;
      rc_tail = tail;
      rc_checkpoint = None;
      rc_restored = 0;
      rc_replayed = replayed;
      rc_placements = placements;
      rc_note = note;
    }
  in
  match checkpoint with
  | None -> log_only "log-only"
  | Some ckpath -> (
    match Checkpoint.read_file_opt ckpath with
    | Error m -> log_only (Printf.sprintf "checkpoint unreadable (%s); log-only fallback" m)
    | Ok ck ->
      let restored, replayed =
        Checkpoint.recover ~checkpoint:ck ~log:entries ~catalog_of:cat
      in
      {
        rc_catalogs = cats;
        rc_entries = entries;
        rc_tail = tail;
        rc_checkpoint = Some ck;
        rc_restored = restored;
        rc_replayed = replayed;
        rc_placements = placements;
        rc_note = "checkpoint + log tail";
      })

let verify ~decl ~reference_log recovery =
  let ref_cats = fresh_catalogs decl in
  (* What recovery may legitimately know: entries durably captured by the
     restored checkpoint (even if the crash destroyed their log records)
     plus entries surviving in the damaged log. Replaying that union over a
     fresh image is the committed-prefix reference — a code path independent
     of checkpoint capture/restore. *)
  let covered =
    match recovery.rc_checkpoint with
    | None -> []
    | Some ck ->
      (* Positional coverage: the checkpoint's effects are exactly the
         first [ck_covers] entries of the undamaged history. *)
      List.filteri
        (fun i _ -> i < ck.Checkpoint.ck_covers)
        reference_log
  in
  let seen = Hashtbl.create 64 in
  let union =
    List.filter
      (fun (e : Wal.entry) ->
        let k = (e.Wal.le_txn, e.Wal.le_tid) in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      (covered @ recovery.rc_entries)
  in
  ignore (Wal.replay union ~catalog_of:(catalog_of ref_cats));
  match diff (snapshot ref_cats) (snapshot recovery.rc_catalogs) with
  | Some m -> Error ("recovered state diverges from committed prefix: " ^ m)
  | None -> check_secondaries recovery.rc_catalogs

(* ---- sweeping ---- *)

type report = {
  rp_points : int;
  rp_clean_tail : int;
  rp_torn_tail : int;
  rp_ckpt_fallback : int;
  rp_failures : (int * string) list;
}

let crash_sweep ?checkpoint ?extra_check ~log ~scratch ~decl ~seeds () =
  let reference_log =
    match Wal.read_file_tolerant log with
    | entries, Wal.Clean -> entries
    | _, Wal.Torn { reason; _ } ->
      failwith ("Faultsim.crash_sweep: reference log is damaged: " ^ reason)
  in
  let scratch_log = scratch ^ ".log" in
  let scratch_ck = scratch ^ ".ckpt" in
  let clean = ref 0 and torn = ref 0 and fallback = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      let rng = Util.Rng.create seed in
      let fault = choose rng ~path:log in
      inject fault ~src:log ~dst:scratch_log;
      (* One time in four, the crash also lands between checkpoint write
         and log flush: the checkpoint is damaged too and recovery must
         fall back to log-only replay. *)
      let ck_arg =
        match checkpoint with
        | None -> None
        | Some ckpath ->
          if Util.Rng.int rng 4 = 0 then begin
            let ck_fault = choose rng ~path:ckpath in
            inject ck_fault ~src:ckpath ~dst:scratch_ck;
            Some scratch_ck
          end
          else Some ckpath
      in
      let r = recover ?checkpoint:ck_arg ~log:scratch_log decl in
      (match r.rc_tail with
      | Wal.Clean -> incr clean
      | Wal.Torn _ -> incr torn);
      if checkpoint <> None && r.rc_checkpoint = None then incr fallback;
      let outcome =
        match verify ~decl ~reference_log r with
        | Error m -> Error m
        | Ok () -> (
          match extra_check with
          | None -> Ok ()
          | Some f -> f r.rc_catalogs)
      in
      match outcome with
      | Ok () -> ()
      | Error m ->
        failures :=
          (seed, Printf.sprintf "[%s] %s" (pp_fault fault) m) :: !failures)
    seeds;
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ scratch_log; scratch_ck ];
  {
    rp_points = List.length seeds;
    rp_clean_tail = !clean;
    rp_torn_tail = !torn;
    rp_ckpt_fallback = !fallback;
    rp_failures = List.rev !failures;
  }
