(** Deterministic crash/fault injection for recovery testing.

    The recovery-equivalence property this module supports: take a workload
    history whose commits were redo-logged to a file (optionally with a
    checkpoint taken part-way), crash at an arbitrary point — modelled as a
    seeded fault applied to a scratch copy of the on-disk artifacts — then
    recover from checkpoint + log tail and check that the recovered database
    equals the committed prefix of the history (the entries still readable
    from the damaged log), including secondary-index consistency.

    Everything is seeded and engine-free: recovery builds catalogs directly
    from the reactor declaration (schemas, secondary indexes, loaders)
    without booting a simulated database, so sweeping hundreds of crash
    points is cheap. *)

(** A simulated crash, applied to a copy of a log or checkpoint file. *)
type fault =
  | Truncate_entries of int
      (** keep only the first [n] records (crash between appends) *)
  | Truncate_bytes of int
      (** keep only the first [n] bytes (torn tail mid-append) *)
  | Corrupt_byte of { off : int; xor : int }
      (** flip bits of one byte in place (media corruption); [xor <> 0] *)

val pp_fault : fault -> string

(** [choose rng ~path] draws a fault appropriate for the file at [path]
    (its size and record count bound the fault coordinates). Equal seeds
    give equal faults. *)
val choose : Util.Rng.t -> path:string -> fault

(** [inject f ~src ~dst] writes a faulted copy of [src] to [dst]. *)
val inject : fault -> src:string -> dst:string -> unit

(** {1 Engine-free database images} *)

(** Catalogs for every reactor of [decl] — tables created with their
    declared secondary indexes, loaders applied — without a simulation
    engine. Mirrors bootstrap ([Reactdb.Database.create]) physically. *)
val fresh_catalogs : Reactor.decl -> (string * Storage.Catalog.t) list

val catalog_of :
  (string * Storage.Catalog.t) list -> string -> Storage.Catalog.t

(** Comparable image of catalog contents: live rows per (reactor, table),
    sorted. *)
type state = (string * string * Util.Value.t array list) list

val snapshot : (string * Storage.Catalog.t) list -> state

(** First divergence between two states, human-readable; [None] if equal. *)
val diff : state -> state -> string option

(** Full secondary-index audit: every live row is reachable through each of
    its table's secondary indexes under the key derived from its current
    tuple, and no index holds extra or stale entries. *)
val check_secondaries :
  (string * Storage.Catalog.t) list -> (unit, string) result

(** {1 Recovery} *)

type recovery = {
  rc_catalogs : (string * Storage.Catalog.t) list;  (** recovered image *)
  rc_entries : Wal.entry list;  (** entries surviving in the (faulted) log *)
  rc_tail : Wal.tail;
  rc_checkpoint : Checkpoint.t option;
      (** the checkpoint restored, if any; [None] when absent or unreadable
          (log-only replay) *)
  rc_restored : int;  (** checkpoint rows installed *)
  rc_replayed : int;  (** log data writes applied (placement records excluded) *)
  rc_placements : (string * int) list;
      (** placement recovered from surviving [Wal.Migrate] records, folded
          in TID order (last move per reactor wins); reactors that never
          migrated are absent and keep their config placement. Feed this to
          the engine bootstrap to resume with the pre-crash deployment
          (DESIGN.md §11). *)
  rc_note : string;  (** recovery path taken, for reports *)
}

(** [recover ?checkpoint ~log decl] rebuilds a database image from on-disk
    artifacts: fresh catalogs, checkpoint restore if [checkpoint] names a
    readable file (an unreadable one — e.g. a crash between checkpoint
    write and log flush — falls back to log-only replay), then tolerant log
    replay of the tail beyond the checkpoint's positional coverage. Never
    raises on damaged files. *)
val recover :
  ?checkpoint:string -> log:string -> Reactor.decl -> recovery

(** [verify ~decl ~reference_log r] checks recovery equivalence: replaying
    (checkpoint-covered prefix of [reference_log]) ∪ (surviving entries)
    onto fresh catalogs must yield exactly [r]'s recovered state, and the
    recovered secondary indexes must audit clean. [reference_log] is the
    full, undamaged history. Checkpoints used here must have been captured
    with [~covers] set to the true log position — a zero-coverage
    checkpoint taken after transactions ran would make the reference under-
    approximate what the snapshot contains. *)
val verify :
  decl:Reactor.decl ->
  reference_log:Wal.entry list ->
  recovery ->
  (unit, string) result

(** {1 Sweeping} *)

type report = {
  rp_points : int;  (** crash points exercised *)
  rp_clean_tail : int;  (** recoveries that found a clean log tail *)
  rp_torn_tail : int;  (** recoveries that stopped at a torn/corrupt record *)
  rp_ckpt_fallback : int;  (** checkpoint unreadable, log-only fallback *)
  rp_failures : (int * string) list;  (** (seed, what went wrong) *)
}

(** [crash_sweep ?checkpoint ?extra_check ~log ~scratch ~decl ~seeds ()]
    runs one recovery per seed: fault a scratch copy of the log (and, one
    time in four when a checkpoint is supplied, of the checkpoint too —
    the crash-between-checkpoint-and-log-tail scenario), recover, and
    {!verify}. [extra_check] runs against each recovered image (e.g. an
    application invariant like conservation of money). [scratch] is a path
    prefix for the faulted copies, which are cleaned up afterwards. The
    undamaged [log] must parse cleanly; raises [Failure] otherwise. *)
val crash_sweep :
  ?checkpoint:string ->
  ?extra_check:((string * Storage.Catalog.t) list -> (unit, string) result) ->
  log:string ->
  scratch:string ->
  decl:Reactor.decl ->
  seeds:int list ->
  unit ->
  report
