#!/bin/sh
# Docs cross-reference check. Fails (non-zero exit) when documentation
# drifts from the tree it describes:
#
#   1. every "DESIGN.md §N" reference (from code, tests, benches or other
#      docs) must resolve to a "## N." section header in DESIGN.md;
#   2. every experiment id cited as "EXPERIMENTS.md *id*" (or `id`) must
#      be a "## id" section in EXPERIMENTS.md;
#   3. every BENCH_*.json artifact named in the docs must exist at the
#      repo root (committed baselines);
#   4. every bench/NAME.exe or docs/NAME.md path named in the docs must
#      exist as bench/NAME.ml / docs/NAME.md.
#
# Run from the repository root: sh bench/docs_check.sh
set -e

fail=0
err() { echo "docs-check: $1" >&2; fail=1; }

DOCS="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/OPERATIONS.md"
SRC_GLOBS="lib bin bench test examples"

# 1. DESIGN.md section references. "§N" and "§N.M" both resolve to the
# top-level "## N." header; scan docs and source comments.
sections=$(grep -E '^## [0-9]+\.' DESIGN.md | sed -E 's/^## ([0-9]+)\..*/\1/')
refs=$(grep -rhoE 'DESIGN\.md §[0-9]+' $DOCS $SRC_GLOBS 2>/dev/null \
  | sed -E 's/.*§([0-9]+).*/\1/' | sort -un)
for n in $refs; do
  echo "$sections" | grep -qx "$n" \
    || err "DESIGN.md §$n referenced but DESIGN.md has no '## $n.' section"
done

# 2. EXPERIMENTS.md experiment ids: "## id — ..." headers with short ids
# (fig5, tab1, predict1, elastic1, ...). Check citations of the form
# "EXPERIMENTS.md *id*", "EXPERIMENTS.md `id`" and "see id" used in the
# artifact schema blocks.
exp_ids=$(grep -E '^## [a-zA-Z0-9]+ ' EXPERIMENTS.md | awk '{print $2}')
cited=$(grep -rhoE --exclude=docs_check.sh 'EXPERIMENTS\.md [*`]([a-zA-Z0-9]+)[*`]' $DOCS $SRC_GLOBS 2>/dev/null \
  | sed -E 's/.*[*`]([a-zA-Z0-9]+)[*`].*/\1/' | sort -u)
for id in $cited; do
  echo "$exp_ids" | grep -qx "$id" \
    || err "experiment id '$id' cited but EXPERIMENTS.md has no '## $id' section"
done

# 3. Committed BENCH artifacts named in the docs must exist (smoke
# variants are generated, not committed — skip them).
for f in $(grep -rhoE 'BENCH_[a-z_]+\.json' $DOCS | sort -u); do
  case "$f" in
    *_smoke.json) ;;
    *) [ -f "$f" ] || err "$f named in docs but not committed at the repo root" ;;
  esac
done

# 4. bench executables and docs/ pages named in the docs must exist.
for exe in $(grep -rhoE 'bench/[a-z_]+\.exe' $DOCS | sort -u); do
  src="bench/$(basename "$exe" .exe).ml"
  [ -f "$src" ] || err "$exe named in docs but $src does not exist"
done
for page in $(grep -rhoE 'docs/[A-Za-z0-9_]+\.md' $DOCS | sort -u); do
  [ -f "$page" ] || err "$page named in docs but missing"
done

[ "$fail" -eq 0 ] && echo "docs-check: all cross-references resolve"
exit "$fail"
