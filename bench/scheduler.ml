(* Dynamic-scheduling bench: static affinity placement vs work stealing
   and cost-aware routing on the real-parallel backend, under uniform and
   Zipfian-skewed YCSB at a fixed domain count, plus a Smallbank
   cross-check.

   Each scenario drives a FIXED amount of work (run_fixed) and reports the
   makespan — wall-clock seconds to finish all of it — rather than
   open-window throughput: with skew, a static schedule leaves the cold
   domains idle while the hot domain grinds through its backlog, and
   makespan is exactly the number that exposes it. Alongside: per-domain
   busy seconds (utilization = busy / makespan), steal and cost-routing
   counters, and latency percentiles from an attached Obs collector.

   Every run is audit-gated, same policy as parallel_scaling.exe: zero
   internal errors, exact attempt accounting
   (committed + aborted = logical + retries), one row per YCSB key reactor
   / exact money conservation for Smallbank, and a full secondary-index
   audit. A failed audit exits non-zero — the numbers mean nothing if the
   dynamic schedule broke execution.

   Usage:
     dune exec bench/scheduler.exe                  full run
     dune exec bench/scheduler.exe -- --fast        shrunken run
     dune exec bench/scheduler.exe -- --out F.json  write elsewhere *)

module RDb = Runtime.Db
module SB = Workloads.Smallbank

type mode = { m_name : string; m_router : Reactdb.Config.router; m_steal : bool }

let modes =
  [
    { m_name = "static"; m_router = Reactdb.Config.Affinity; m_steal = false };
    { m_name = "steal"; m_router = Reactdb.Config.Affinity; m_steal = true };
    { m_name = "cost"; m_router = Reactdb.Config.Cost; m_steal = false };
    { m_name = "dynamic"; m_router = Reactdb.Config.Cost; m_steal = true };
  ]

type row = {
  rw_workload : string;
  rw_mode : string;
  rw_domains : int;
  rw_txns : int;  (** logical transactions driven *)
  rw_makespan_s : float;
  rw_throughput : float;  (** logical committed / makespan *)
  rw_p50 : float;
  rw_p99 : float;
  rw_util_mean : float;
  rw_util_min : float;  (** coldest domain's utilization *)
  rw_steals : int;
  rw_cost_routed : int;
  rw_sheds : int;
  rw_retries : int;
  rw_audit : (unit, string) result;
}

(* Contiguous placement: the first |xs|/k reactors on domain 0, the next
   on domain 1, … Zipfian popularity decreases with key index, so under
   skew the whole hot set lands on domain 0 — the domain-level imbalance a
   static schedule cannot fix (round-robin dealing would spread the hot
   keys one per domain and hide it). *)
let chunk k xs =
  let n = List.length xs in
  let per = (n + k - 1) / k in
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i / per) <- x :: groups.(i / per)) xs;
  Array.to_list (Array.map List.rev groups)

(* Same placement for every mode — only ingress policy and stealing
   differ, so makespan deltas are pure scheduling effects. *)
let make_config router groups =
  match router with
  | Reactdb.Config.Affinity -> Reactdb.Config.shared_nothing groups
  | (Reactdb.Config.Round_robin | Reactdb.Config.Cost) as router ->
    let placement = Hashtbl.create 256 in
    List.iteri
      (fun ci names -> List.iter (fun nm -> Hashtbl.add placement nm ci) names)
      groups;
    Reactdb.Config.custom
      ~executors_per_container:(Array.make (List.length groups) 1)
      ~router
      ~placement:(Hashtbl.find placement) ()

let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e

type workload = Ycsb of { keys : int; theta : float } | Smallbank of int

let workload_name = function
  | Ycsb { theta; _ } ->
    if theta = 0. then "ycsb-uniform" else Printf.sprintf "ycsb-zipf-%.2f" theta
  | Smallbank _ -> "smallbank-conserving"

let run_scenario ~wl ~mode ~d ~workers ~per_worker =
  let decl, names =
    match wl with
    | Ycsb { keys; _ } -> (Workloads.Ycsb.decl ~keys (), Workloads.Ycsb.keys keys)
    | Smallbank n -> (SB.decl ~customers:n (), SB.customers n)
  in
  let cfg = make_config mode.m_router (chunk d names) in
  let db = RDb.start ~steal:mode.m_steal decl cfg in
  let collector =
    Obs.Collector.create ~clock:Obs.Wall ~containers:(RDb.n_domains db) ()
  in
  RDb.attach_obs db collector;
  let gen =
    match wl with
    | Ycsb { keys; theta } ->
      let p = Workloads.Ycsb.params ~txn_keys:8 ~theta keys in
      fun _ rng ->
        Workloads.Ycsb.gen_multi_update rng p
          ~container_of:(RDb.container_of db)
    | Smallbank n -> fun _ rng -> SB.gen_conserving rng ~n
  in
  let busy0 = RDb.busy_times db in
  let t0 = Unix.gettimeofday () in
  let retries =
    RDb.Load.run_fixed db ~max_retries:3 ~n_workers:workers ~per_worker
      ~seed:42 gen
  in
  let makespan = Unix.gettimeofday () -. t0 in
  let busy1 = RDb.busy_times db in
  RDb.publish_sched_obs db;
  let stats = RDb.sched_stats db in
  RDb.shutdown db;
  let logical = workers * per_worker in
  let report = Obs.Report.summarize collector in
  let audit =
    (if RDb.n_fatal db = 0 then Ok ()
     else
       Error
         (Printf.sprintf "%d internal errors (first: %s)" (RDb.n_fatal db)
            (match RDb.fatal_messages db with m :: _ -> m | [] -> "?")))
    >>= fun () ->
    (if RDb.n_committed db + RDb.n_aborted db = logical + retries then Ok ()
     else
       Error
         (Printf.sprintf
            "attempt accounting broken: %d committed + %d aborted <> %d \
             logical + %d retries"
            (RDb.n_committed db) (RDb.n_aborted db) logical retries))
    >>= fun () ->
    (match wl with
    | Ycsb _ ->
      if
        List.for_all
          (fun (_, _, rows) -> List.length rows = 1)
          (Faultsim.snapshot (RDb.catalogs db))
      then Ok ()
      else Error "YCSB key reactor lost or duplicated its row"
    | Smallbank n ->
      let expected = float_of_int n *. 2. *. 10_000. in
      let got = SB.total_money (List.map snd (RDb.catalogs db)) in
      if Float.abs (got -. expected) < 1e-6 then Ok ()
      else
        Error
          (Printf.sprintf "money not conserved: expected %.1f, got %.1f"
             expected got))
    >>= fun () ->
    match Faultsim.check_secondaries (RDb.catalogs db) with
    | Ok () -> Ok ()
    | Error m -> Error ("secondary-index audit: " ^ m)
  in
  let utils =
    Array.init d (fun i ->
        Float.min 1. ((busy1.(i) -. busy0.(i)) /. Float.max 1e-9 makespan))
  in
  let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a) in
  {
    rw_workload = workload_name wl;
    rw_mode = mode.m_name;
    rw_domains = d;
    rw_txns = logical;
    rw_makespan_s = makespan;
    rw_throughput = float_of_int (RDb.n_committed db) /. makespan;
    rw_p50 = report.Obs.Report.r_lat_p50_us;
    rw_p99 = report.Obs.Report.r_lat_p99_us;
    rw_util_mean = mean utils;
    rw_util_min = Array.fold_left Float.min 1. utils;
    rw_steals = RDb.n_steals db;
    rw_cost_routed =
      Array.fold_left (fun a s -> a + s.RDb.ss_routed_by_cost) 0 stats;
    rw_sheds = Array.fold_left (fun a s -> a + s.RDb.ss_sheds) 0 stats;
    rw_retries = retries;
    rw_audit = audit;
  }

let emit_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"scheduler\",\n";
  Printf.fprintf oc "  \"host\": {\"recommended_domains\": %d},\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc
    "  \"note\": \"fixed-work makespan comparison; dynamic scheduling \
     (stealing + cost routing) only pays off when skew leaves some domains \
     idle, so compare modes within one workload row group\",\n";
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"mode\": %S, \"domains\": %d, \"txns\": %d, \
         \"makespan_s\": %.4f, \"throughput\": %.1f, \"p50_us\": %.1f, \
         \"p99_us\": %.1f, \"util_mean\": %.3f, \"util_min\": %.3f, \
         \"steals\": %d, \"cost_routed\": %d, \"sheds\": %d, \"retries\": \
         %d, \"audit\": %S}%s\n"
        r.rw_workload r.rw_mode r.rw_domains r.rw_txns r.rw_makespan_s
        r.rw_throughput r.rw_p50 r.rw_p99 r.rw_util_mean r.rw_util_min
        r.rw_steals r.rw_cost_routed r.rw_sheds r.rw_retries
        (match r.rw_audit with Ok () -> "ok" | Error m -> m)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let () =
  let fast = ref false in
  let out = ref "BENCH_scheduler.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let d = 4 in
  let workers = 16 in
  let per_worker = if !fast then 150 else 800 in
  let keys = if !fast then 128 else 512 in
  let workloads =
    [
      Ycsb { keys; theta = 0. };
      Ycsb { keys; theta = 0.99 };
      Smallbank (if !fast then 128 else 512);
    ]
  in
  Printf.printf
    "Scheduler sweep (%d domains, %d workers x %d txns, host recommends %d \
     domains)\n%!"
    d workers per_worker
    (Domain.recommended_domain_count ());
  let rows =
    List.concat_map
      (fun wl ->
        List.map
          (fun mode ->
            let r = run_scenario ~wl ~mode ~d ~workers ~per_worker in
            Printf.printf
              "  %-16s %-8s makespan %6.3fs  %8.0f txn/s  p99 %8.1fus  util \
               %4.2f (min %4.2f)  steals %5d  cost-routed %5d  [%s]\n%!"
              r.rw_workload r.rw_mode r.rw_makespan_s r.rw_throughput r.rw_p99
              r.rw_util_mean r.rw_util_min r.rw_steals r.rw_cost_routed
              (match r.rw_audit with
              | Ok () -> "audit ok"
              | Error _ -> "AUDIT FAILED");
            r)
          modes)
      workloads
  in
  emit_json !out rows;
  Printf.printf "wrote %s\n" !out;
  let failures =
    List.filter_map
      (fun r ->
        match r.rw_audit with
        | Ok () -> None
        | Error m ->
          Some (Printf.sprintf "%s/%s: %s" r.rw_workload r.rw_mode m))
      rows
  in
  (* The headline claim is also gated: under Zipfian skew the dynamic mode
     must actually steal. (Makespan improvement is asserted softly — wall
     clock on a shared host is too noisy for a hard exit — but printed so
     regressions are visible in the committed JSON.) *)
  let zipf_dynamic =
    List.find_opt
      (fun r ->
        r.rw_mode = "dynamic"
        && String.length r.rw_workload >= 9
        && String.sub r.rw_workload 0 9 = "ycsb-zipf")
      rows
  in
  (match zipf_dynamic with
  | Some r when r.rw_steals = 0 ->
    Printf.eprintf "GATE FAILURE: dynamic mode never stole under skew\n";
    exit 1
  | _ -> ());
  if failures <> [] then begin
    List.iter (Printf.eprintf "AUDIT FAILURE: %s\n") failures;
    exit 1
  end
