(* Elasticity bench: live reconfiguration under load (DESIGN.md §11). Emits
   `BENCH_elasticity.json`.

   Three scenarios:

   1. Migration timeline (runtime): a closed-loop conserving Smallbank mix
      over 4 domains, bucketed into fixed wall-clock windows; a hot
      reactor is force-migrated at two window boundaries. Reports
      per-window throughput and p99, and the pause of each migration.
   2. Virtualization oracle (simulator): the same serial workload run on a
      static deployment and with migrations interleaved must produce
      byte-identical results and physical state (Faultsim.diff).
   3. Autoscaler (runtime): every reactor starts on one domain of four;
      the signal-driven controller must split the hot domain under load.

   Hard gates (non-zero exit on failure):

   - zero lost or duplicated transactions: every attempt yields exactly
     one outcome, committed + aborted = attempts, in every scenario;
   - money conserved (physical audit) after every scenario, and the
     secondary-index audit stays clean;
   - throughput recovery: the mean post-migration window throughput is at
     least 90% of the pre-migration steady state (migration windows
     themselves excluded);
   - migration pause bounded: the worst observed pause stays under
     [pause_bound_us];
   - sim byte-identity: migrated and static serial runs are identical;
   - autoscaler acts: at least one split is applied and the deployment
     ends on more than one domain.

   Usage:
     dune exec bench/elasticity.exe                   full run
     dune exec bench/elasticity.exe -- --fast         shrunken (smoke)
     dune exec bench/elasticity.exe -- --out F.json *)

open Util
module SB = Workloads.Smallbank
module W = Workloads
module J = Obs.Json
module Config = Reactdb.Config
module DB = Reactdb.Database
module RDb = Runtime.Db
module AS = Runtime.Autoscaler

let n_cust = 16
let n_containers = 4
let n_workers = 4
let pause_bound_us = 250_000.
let expected_money = float_of_int (2 * n_cust) *. 10_000.

let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let i = int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) i))
  end

let pct lats p =
  let a = Array.of_list lats in
  Array.sort Float.compare a;
  percentile a p

let money_audit catalogs =
  let got = SB.total_money catalogs in
  Float.abs (got -. expected_money) < 1e-6

let audit_secondaries cats =
  match Faultsim.check_secondaries cats with Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Scenario 1: migration timeline. Closed-loop workers tag every attempt
   with its wall-clock window; the main thread migrates the hot reactor at
   the configured window boundaries. *)

type window = {
  w_idx : int;
  w_attempts : int;
  w_committed : int;
  w_throughput : float;  (* commits per second *)
  w_p50_us : float;
  w_p99_us : float;
  w_migration : (string * int * float) option;  (* reactor, dst, pause µs *)
}

type timeline = {
  t_windows : window list;
  t_attempts : int;  (* worker-side count: one per submitted root *)
  t_committed : int;
  t_aborted : int;
  t_outcomes : int;  (* worker-side count of outcomes observed *)
  t_pauses : float list;
  t_money_ok : bool;
  t_audit_ok : bool;
  t_fatal : int;
  t_recovery : float;  (* post/pre steady-state throughput ratio *)
}

let run_timeline ~windows ~window_s ~migrate_at =
  let decl = SB.decl ~customers:n_cust () in
  let cfg = Config.shared_nothing (chunk n_containers (SB.customers n_cust)) in
  let db = RDb.start decl cfg in
  let victim = SB.customer_name 0 in
  let stop = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init n_workers (fun w ->
        Domain.spawn (fun () ->
            (* per-attempt (window, latency_us, committed) samples *)
            let samples = ref [] and attempts = ref 0 in
            let rng = Rng.create (71 + w) in
            while not (Atomic.get stop) do
              let req = SB.gen_conserving rng ~n:n_cust in
              incr attempts;
              let o =
                RDb.exec_txn db ~reactor:req.W.Wl.reactor ~proc:req.W.Wl.proc
                  ~args:req.W.Wl.args
              in
              let wi =
                int_of_float ((Unix.gettimeofday () -. t0) /. window_s)
              in
              samples :=
                (wi, o.RDb.latency_us, Result.is_ok o.RDb.result) :: !samples
            done;
            (!attempts, !samples)))
  in
  (* window clock + forced migrations on the main thread *)
  let migs = ref [] in
  for wi = 0 to windows - 1 do
    let target = t0 +. (float_of_int (wi + 1) *. window_s) in
    (match List.assoc_opt wi migrate_at with
    | Some () ->
      let dst = (RDb.container_of db victim + 1) mod n_containers in
      let pause = RDb.migrate db ~reactor:victim ~dst in
      migs := (wi, victim, dst, pause) :: !migs
    | None -> ());
    let remaining = target -. Unix.gettimeofday () in
    if remaining > 0. then Unix.sleepf remaining
  done;
  Atomic.set stop true;
  let per_worker = List.map Domain.join doms in
  RDb.quiesce db;
  let attempts = List.fold_left (fun a (n, _) -> a + n) 0 per_worker in
  let samples = List.concat_map snd per_worker in
  let committed = RDb.n_committed db and aborted = RDb.n_aborted db in
  let fatal = RDb.n_fatal db in
  RDb.shutdown db;
  let money_ok = money_audit (List.map snd (RDb.catalogs db)) in
  let audit_ok = audit_secondaries (RDb.catalogs db) in
  let wins =
    List.init windows (fun wi ->
        let mine = List.filter (fun (i, _, _) -> i = wi) samples in
        let commits =
          List.filter (fun (_, _, ok) -> ok) mine |> List.length
        in
        let lats = List.map (fun (_, l, _) -> l) mine in
        {
          w_idx = wi;
          w_attempts = List.length mine;
          w_committed = commits;
          w_throughput = float_of_int commits /. window_s;
          w_p50_us = pct lats 50.;
          w_p99_us = pct lats 99.;
          w_migration =
            List.find_map
              (fun (i, r, d, p) -> if i = wi then Some (r, d, p) else None)
              !migs;
        })
  in
  (* steady state: windows strictly before the first / after the last
     migration window (those windows absorb the pause itself) *)
  let mig_wins = List.map (fun (i, _, _, _) -> i) !migs in
  let recovery =
    match (mig_wins, wins) with
    | [], _ -> 1.
    | _ ->
      let first = List.fold_left Stdlib.min max_int mig_wins in
      let last = List.fold_left Stdlib.max 0 mig_wins in
      let mean sel =
        let xs = List.filter sel wins in
        if xs = [] then 0.
        else
          List.fold_left (fun a w -> a +. w.w_throughput) 0. xs
          /. float_of_int (List.length xs)
      in
      let pre = mean (fun w -> w.w_idx < first) in
      let post = mean (fun w -> w.w_idx > last) in
      if pre <= 0. then 0. else post /. pre
  in
  {
    t_windows = wins;
    t_attempts = attempts;
    t_committed = committed;
    t_aborted = aborted;
    t_outcomes = List.length samples;
    t_pauses = List.map (fun (_, _, _, p) -> p) !migs;
    t_money_ok = money_ok;
    t_audit_ok = audit_ok;
    t_fatal = fatal;
    t_recovery = recovery;
  }

(* ------------------------------------------------------------------ *)
(* Scenario 2: virtualization oracle. A serial conserving workload on the
   simulator, static vs migration-interleaved: results and final physical
   state must be byte-identical (placement is virtualized). *)

let run_byte_identity ~ops =
  let decl = SB.decl ~customers:n_cust () in
  let cfg = Config.shared_nothing (chunk n_containers (SB.customers n_cust)) in
  let names = SB.customers n_cust in
  let reqs =
    let rng = Rng.stream ~seed:907 0 in
    List.init ops (fun _ -> SB.gen_conserving rng ~n:n_cust)
  in
  let plan =
    [ (ops / 4, (SB.customer_name 0, 2));
      (ops / 2, (SB.customer_name 5, 0));
      (3 * ops / 4, (SB.customer_name 0, 3)) ]
  in
  let run migrations =
    let db = Harness.build decl cfg in
    let results = ref [] in
    let eng = DB.engine db in
    Sim.Engine.spawn eng (fun () ->
        results :=
          List.mapi
            (fun i r ->
              (if migrations then
                 match List.assoc_opt i plan with
                 | Some (mr, md) -> ignore (DB.migrate db ~reactor:mr ~dst:md)
                 | None -> ());
              (DB.exec_txn db ~reactor:r.W.Wl.reactor ~proc:r.W.Wl.proc
                 ~args:r.W.Wl.args)
                .DB.result)
            reqs);
    ignore (Sim.Engine.run eng);
    let st =
      Faultsim.snapshot (List.map (fun nm -> (nm, DB.catalog_of db nm)) names)
    in
    (!results, st, DB.n_migrations db)
  in
  let r_static, st_static, _ = run false in
  let r_mig, st_mig, n_migs = run true in
  let results_equal =
    List.for_all2
      (fun a b ->
        match (a, b) with
        | Ok va, Ok vb -> Value.equal va vb
        | Error ma, Error mb -> ma = mb
        | _ -> false)
      r_static r_mig
  in
  let state_diff = Faultsim.diff st_static st_mig in
  (results_equal, state_diff, n_migs)

(* ------------------------------------------------------------------ *)
(* Scenario 3: autoscaler. Everything starts on domain 0 of 4; under a
   closed-loop load the controller must split the hot domain. *)

let run_autoscaler ~duration_s =
  let decl = SB.decl ~customers:8 () in
  let cfg =
    Config.custom
      ~executors_per_container:(Array.make n_containers 1)
      ~router:Config.Affinity
      ~placement:(fun _ -> 0)
      ()
  in
  let db = RDb.start decl cfg in
  let ctl = AS.start ~interval_s:0.02 db in
  let stop = Atomic.make false in
  let doms =
    List.init n_workers (fun w ->
        Domain.spawn (fun () ->
            let attempts = ref 0 and outcomes = ref 0 in
            let rng = Rng.create (211 + w) in
            while not (Atomic.get stop) do
              let req = SB.gen_conserving rng ~n:8 in
              incr attempts;
              let o =
                RDb.exec_txn db ~reactor:req.W.Wl.reactor ~proc:req.W.Wl.proc
                  ~args:req.W.Wl.args
              in
              ignore o.RDb.result;
              incr outcomes
            done;
            (!attempts, !outcomes)))
  in
  Unix.sleepf duration_s;
  Atomic.set stop true;
  let per_worker = List.map Domain.join doms in
  AS.stop ctl;
  RDb.quiesce db;
  let attempts = List.fold_left (fun a (n, _) -> a + n) 0 per_worker in
  let outcomes = List.fold_left (fun a (_, n) -> a + n) 0 per_worker in
  let committed = RDb.n_committed db and aborted = RDb.n_aborted db in
  let fatal = RDb.n_fatal db in
  let splits, merges = AS.moves ctl in
  let domains_used =
    List.sort_uniq Int.compare (List.map snd (RDb.placements db))
  in
  RDb.shutdown db;
  let money_ok =
    Float.abs
      (SB.total_money (List.map snd (RDb.catalogs db))
      -. (float_of_int (2 * 8) *. 10_000.))
    < 1e-6
  in
  let audit_ok = audit_secondaries (RDb.catalogs db) in
  ( attempts, outcomes, committed, aborted, fatal, splits, merges,
    List.length domains_used, money_ok, audit_ok )

(* ------------------------------------------------------------------ *)

let window_json w =
  J.Obj
    ([
       ("window", J.Num (float_of_int w.w_idx));
       ("attempts", J.Num (float_of_int w.w_attempts));
       ("committed", J.Num (float_of_int w.w_committed));
       ("throughput_tps", J.Num w.w_throughput);
       ("p50_us", J.Num w.w_p50_us);
       ("p99_us", J.Num w.w_p99_us);
     ]
    @
    match w.w_migration with
    | None -> []
    | Some (r, d, p) ->
      [
        ( "migration",
          J.Obj
            [
              ("reactor", J.Str r);
              ("dst", J.Num (float_of_int d));
              ("pause_us", J.Num p);
            ] );
      ])

let () =
  let fast = ref false in
  let out = ref "BENCH_elasticity.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let windows = if !fast then 6 else 10 in
  let window_s = if !fast then 0.15 else 0.4 in
  let sim_ops = if !fast then 200 else 800 in
  let auto_s = if !fast then 0.5 else 1.5 in
  let migrate_at = [ (windows / 3, ()); (2 * windows / 3, ()) ] in
  Printf.printf
    "Elasticity: %d customers / %d containers, %d workers, %d windows x %.2fs\n%!"
    n_cust n_containers n_workers windows window_s;

  Printf.printf "\n== migration timeline (runtime) ==\n%!";
  let tl = run_timeline ~windows ~window_s ~migrate_at in
  List.iter
    (fun w ->
      Printf.printf "  window %2d  %8.0f tps  p99 %9.1f us%s\n%!" w.w_idx
        w.w_throughput w.w_p99_us
        (match w.w_migration with
        | Some (r, d, p) ->
          Printf.sprintf "  [migrated %s -> %d, pause %.0f us]" r d p
        | None -> ""))
    tl.t_windows;
  Printf.printf
    "  attempts %d = committed %d + aborted %d; outcomes %d; recovery %.2f\n%!"
    tl.t_attempts tl.t_committed tl.t_aborted tl.t_outcomes tl.t_recovery;
  let accounting_ok =
    tl.t_attempts = tl.t_outcomes
    && tl.t_attempts = tl.t_committed + tl.t_aborted
    && tl.t_fatal = 0
  in
  let recovery_ok = tl.t_recovery >= 0.9 in
  let pause_worst = List.fold_left Float.max 0. tl.t_pauses in
  let pause_ok =
    List.length tl.t_pauses = List.length migrate_at
    && pause_worst < pause_bound_us
  in

  Printf.printf "\n== virtualization oracle (simulator) ==\n%!";
  let results_equal, state_diff, sim_migs = run_byte_identity ~ops:sim_ops in
  let byte_identity_ok = results_equal && state_diff = None && sim_migs = 3 in
  Printf.printf "  %d serial ops, %d migrations: results %s, state %s\n%!"
    sim_ops sim_migs
    (if results_equal then "identical" else "DIVERGED")
    (match state_diff with None -> "byte-identical" | Some d -> "DIFF: " ^ d);

  Printf.printf "\n== autoscaler (runtime) ==\n%!";
  let ( a_attempts, a_outcomes, a_committed, a_aborted, a_fatal, splits,
        merges, a_domains, a_money_ok, a_audit_ok ) =
    run_autoscaler ~duration_s:auto_s
  in
  Printf.printf
    "  attempts %d = committed %d + aborted %d; splits %d merges %d; %d \
     domains in use\n%!"
    a_attempts a_committed a_aborted splits merges a_domains;
  let auto_accounting_ok =
    a_attempts = a_outcomes
    && a_attempts = a_committed + a_aborted
    && a_fatal = 0
  in
  let autoscaler_ok = splits >= 1 && a_domains > 1 in

  let money_ok = tl.t_money_ok && a_money_ok in
  let audit_ok = tl.t_audit_ok && a_audit_ok in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "elasticity");
        ("schema_version", J.Num (float_of_int Obs.Report.schema_version));
        ("customers", J.Num (float_of_int n_cust));
        ("containers", J.Num (float_of_int n_containers));
        ("workers", J.Num (float_of_int n_workers));
        ("window_s", J.Num window_s);
        ("windows", J.List (List.map window_json tl.t_windows));
        ( "timeline",
          J.Obj
            [
              ("attempts", J.Num (float_of_int tl.t_attempts));
              ("committed", J.Num (float_of_int tl.t_committed));
              ("aborted", J.Num (float_of_int tl.t_aborted));
              ("outcomes", J.Num (float_of_int tl.t_outcomes));
              ("recovery_ratio", J.Num tl.t_recovery);
              ("pause_worst_us", J.Num pause_worst);
              ( "pauses_us",
                J.List (List.map (fun p -> J.Num p) (List.rev tl.t_pauses)) );
            ] );
        ( "byte_identity",
          J.Obj
            [
              ("serial_ops", J.Num (float_of_int sim_ops));
              ("migrations", J.Num (float_of_int sim_migs));
              ("results_equal", J.Bool results_equal);
              ( "state_diff",
                match state_diff with None -> J.Null | Some d -> J.Str d );
            ] );
        ( "autoscaler",
          J.Obj
            [
              ("attempts", J.Num (float_of_int a_attempts));
              ("committed", J.Num (float_of_int a_committed));
              ("aborted", J.Num (float_of_int a_aborted));
              ("splits", J.Num (float_of_int splits));
              ("merges", J.Num (float_of_int merges));
              ("domains_in_use", J.Num (float_of_int a_domains));
            ] );
        ( "gates",
          J.Obj
            [
              ("accounting_ok", J.Bool (accounting_ok && auto_accounting_ok));
              ("money_ok", J.Bool money_ok);
              ("audit_ok", J.Bool audit_ok);
              ("recovery_ok", J.Bool recovery_ok);
              ("pause_ok", J.Bool pause_ok);
              ("byte_identity_ok", J.Bool byte_identity_ok);
              ("autoscaler_ok", J.Bool autoscaler_ok);
            ] );
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  if not (accounting_ok && auto_accounting_ok) then
    prerr_endline "FAIL: lost or duplicated transactions (accounting)";
  if not money_ok then prerr_endline "FAIL: money not conserved";
  if not audit_ok then prerr_endline "FAIL: secondary-index audit";
  if not recovery_ok then
    prerr_endline "FAIL: throughput did not recover to 90% of steady state";
  if not pause_ok then prerr_endline "FAIL: migration pause unbounded";
  if not byte_identity_ok then
    prerr_endline "FAIL: migrated sim run diverged from static placement";
  if not autoscaler_ok then
    prerr_endline "FAIL: autoscaler applied no split under hot load";
  if
    not
      (accounting_ok && auto_accounting_ok && money_ok && audit_ok
     && recovery_ok && pause_ok && byte_identity_ok && autoscaler_ok)
  then exit 1
