#!/bin/sh
# Perf smoke run: shrunken experiment sweeps plus the commit-path trajectory
# runner. Exits non-zero if anything crashes; prints the trajectory JSON
# summary at the end. Run from the repository root:
#
#   sh bench/smoke.sh
set -e

OUT="${1:-BENCH_commit_path.json}"

echo "== bench smoke: experiments (--fast) =="
dune exec bench/main.exe -- --fast

echo
echo "== bench smoke: crash/fault-injection sweep =="
dune exec bench/crash_sweep.exe -- --fast

echo
echo "== bench smoke: commit-path trajectory =="
dune exec bench/trajectory.exe -- --fast --out "$OUT"

echo
echo "== $OUT =="
cat "$OUT"
