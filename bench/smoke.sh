#!/bin/sh
# Perf smoke run: shrunken experiment sweeps plus the commit-path trajectory
# runner. Exits non-zero if anything crashes; prints the trajectory JSON
# summary at the end. Run from the repository root:
#
#   sh bench/smoke.sh
set -e

OUT="${1:-BENCH_commit_path.json}"

echo "== bench smoke: experiments (--fast) =="
dune exec bench/main.exe -- --fast

echo
echo "== bench smoke: crash/fault-injection sweep =="
dune exec bench/crash_sweep.exe -- --fast

echo
echo "== bench smoke: commit-path trajectory =="
dune exec bench/trajectory.exe -- --fast --out "$OUT"

echo
echo "== bench smoke: parallel scaling (audit-gated) =="
# The runner exits non-zero if any run fails its equivalence audit
# (money conservation, secondary indexes, internal errors), so a broken
# parallel runtime fails the smoke even when throughput looks fine.
dune exec bench/parallel_scaling.exe -- --fast --out BENCH_parallel_scaling_smoke.json

echo
echo "== $OUT =="
cat "$OUT"
