#!/bin/sh
# Perf smoke run: shrunken experiment sweeps plus the commit-path trajectory
# runner. Exits non-zero if anything crashes; prints the trajectory JSON
# summary at the end. Run from the repository root:
#
#   sh bench/smoke.sh
set -e

# Default to a _smoke suffix so a smoke run never overwrites the committed
# full-run baseline that bench/predictability.exe gates against by default.
OUT="${1:-BENCH_commit_path_smoke.json}"

echo "== bench smoke: experiments (--fast) =="
dune exec bench/main.exe -- --fast

echo
echo "== bench smoke: crash/fault-injection sweep =="
dune exec bench/crash_sweep.exe -- --fast

echo
echo "== bench smoke: commit-path trajectory =="
dune exec bench/trajectory.exe -- --fast --out "$OUT"

echo
echo "== bench smoke: predictability (phase-sum and overhead gated) =="
# Gates against the trajectory baseline generated seconds earlier in this
# same script, so the no-op-sink overhead comparison is same-machine and
# same-moment; the committed BENCH_commit_path.json is the default
# baseline for full local runs. Exits non-zero if any attempt's phase
# durations fail to sum to its latency within 1%, or if the disabled
# tracing sink costs more than 3% on the direct commit-path scenarios.
dune exec bench/predictability.exe -- --fast --baseline "$OUT" \
  --out BENCH_predictability_smoke.json

echo
echo "== bench smoke: parallel scaling (audit-gated) =="
# The runner exits non-zero if any run fails its equivalence audit
# (money conservation, secondary indexes, internal errors), so a broken
# parallel runtime fails the smoke even when throughput looks fine.
dune exec bench/parallel_scaling.exe -- --fast --out BENCH_parallel_scaling_smoke.json

echo
echo "== bench smoke: dynamic scheduling (audit- and steal-gated) =="
# Static vs steal vs cost-router vs dynamic sweeps under uniform and
# Zipfian skew. The runner exits non-zero if any run fails its
# equivalence audit, or if the dynamic mode records zero steals under
# skew (the stealing path silently disabled).
dune exec bench/scheduler.exe -- --fast --out BENCH_scheduler_smoke.json

echo
echo "== bench smoke: intra-transaction parallelism (audit- and speedup-gated) =="
# Sequential vs fan-out/collect formulations morphed by the deployment
# (shared-nothing vs shared-nothing-async) at 1/2/4 containers, on the
# simulator's virtual clock. Exits non-zero if money conservation or
# history certification fails, if phase sums deviate by more than 1%, or
# if the 4-container fan-out speedup drops below 1.5x (measured or
# predicted).
dune exec bench/intra_txn.exe -- --fast --out BENCH_intra_txn_smoke.json

echo
echo "== bench smoke: snapshot reads (audit- and p99-gated) =="
# Epoch-based snapshot reads vs the OCC read path, zipf theta x read
# fraction on both backends. Exits non-zero if any read-only transaction
# aborts, if a committed read observes an unconserved total (the
# consistency audit), if phase sums deviate by more than 1%, or if the
# snapshot read p99 is not strictly below the OCC baseline's at theta
# 0.99.
dune exec bench/snapshot.exe -- --fast --out BENCH_snapshot_smoke.json

echo
echo "== bench smoke: elasticity (audit- and recovery-gated) =="
# Live reconfiguration: forced migrations of a hot reactor under a
# closed-loop conserving load, the simulator byte-identity oracle
# (migrated vs static placement), and the signal-driven autoscaler
# splitting an all-on-one-domain deployment. Exits non-zero if any
# transaction is lost or duplicated, money is not conserved, throughput
# fails to recover to 90% of the pre-migration steady state, a migration
# pause exceeds its bound, the migrated sim run diverges from the static
# one, or the autoscaler never splits.
dune exec bench/elasticity.exe -- --fast --out BENCH_elasticity_smoke.json

echo
echo "== bench smoke: chaos sweep (audit-gated) =="
# Seeded fault injection across every chaos class on both backends; the
# runner exits non-zero if any scenario violates its audits (money
# conservation, attempt accounting, zero internal errors, bounded
# wall-clock progress, sheds under --mailbox-cap with bounded p99).
dune exec bench/chaos_sweep.exe -- --fast --seed 42 --out BENCH_chaos_smoke.json

echo
echo "== bench smoke: replication (audit- and failover-gated) =="
# Log shipping to two replicas with frozen-epoch replica-read audits, a
# seeded kill-primary failover drill (fence -> final ship -> gated
# promotion -> resumed engine), and shipment chaos (dropped/delayed
# batches). Exits non-zero if a replica read deviates from the loaded
# total, replicas fail to converge to the durable epoch, an acked commit
# is lost across failover, attempt accounting breaks, promotion fails
# its recovery-equivalence oracle, or the failover pause is unbounded.
dune exec bench/replication.exe -- --fast --seed 42 --out BENCH_replication_smoke.json

echo
echo "== $OUT =="
cat "$OUT"
