(* Log-shipping replication bench: gates the replica/failover machinery
   (DESIGN.md §12) on end-to-end correctness audits.

   Scenarios:
   - steady: simulator backend in durable group-commit mode shipping its
     WAL to two replicas in epoch-tagged batches while a conserving
     Smallbank mix runs. Replica reads ([sum_all], declared read-only)
     are audited at every shipping round: served at the replica's
     watermark epoch they must sum to the loaded total *exactly*, every
     time — lag is visible as staleness, never as inconsistency. At
     quiescence the replicas must converge byte-for-byte to the primary
     (Faultsim.diff), pass the secondary-index audit, and publish
     zero-lag rows through Obs.
   - failover: a seeded [Chaos.Kill_primary] probe crashes the primary
     mid-2PC (the coordinator fences; its in-flight decision rolls
     back); every subsequent submission is refused at admission. The
     surviving durable log is handed to the replicas ([final_ship]) and
     the freshest one is promoted through the recovery-equivalence
     oracle under a bumped generation. Gates: exact attempt accounting
     (committed + aborted + fenced refusals = attempts), zero lost
     committed transactions (every positive-TID entry in the primary's
     durable log is present in the promoted replica's log, and their
     count equals the committed write transactions observed by the
     load), money conserved on the promoted state, bounded wall-clock
     failover pause, and a resumed engine seeded from the promoted log
     serving a fresh conserving load that still conserves money.
   - shipment-chaos: [Drop_shipment] (batch lost in flight; the
     replica's unchanged watermark re-requests it next round) and
     [Delay_shipment] (batch held one round) against the shipper. Gates:
     the injector fired, and the replicas still converge to the durable
     epoch with money conserved after the final hand-off.

   Usage:
     dune exec bench/replication.exe                    full run
     dune exec bench/replication.exe -- --fast          shrunken run
     dune exec bench/replication.exe -- --seed N        chaos/load seed
     dune exec bench/replication.exe -- --out F.json    write elsewhere *)

module DB = Reactdb.Database
module SB = Workloads.Smallbank
module Wl = Workloads.Wl
module J = Obs.Json
module Value = Util.Value

let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

let expected_money n = float_of_int n *. 2. *. 10_000.

let money_ok ~n cats =
  Float.abs (SB.total_money cats -. expected_money n) < 1e-6

let replica_cats r = List.map snd (Replica.catalogs r)

let primary_cats db names = List.map (fun nm -> (nm, DB.catalog_of db nm)) names

(* Committed write transactions log exactly one entry each, stamped with
   the transaction's positive OCC id; migrations log negative ids. The
   positive-id count is therefore the committed-write count — the unit of
   the zero-lost-committed gate. *)
let committed_entries entries =
  List.length (List.filter (fun e -> e.Wal.le_txn > 0) entries)

let is_write_proc proc = proc <> "balance" && proc <> "sum_all"

(* One shipping round followed by a replica-read audit: [sum_all] fans
   out over every customer at the replica's frozen watermark epoch, so
   the grand total must equal the loaded total exactly — at every lag. *)
let audit_replica_reads ~n replicas served bad =
  let args = List.map (fun c -> Value.Str c) (List.tl (SB.customers n)) in
  List.iter
    (fun r ->
      incr served;
      match
        Replica.exec_ro r ~reactor:(SB.customer_name 0) ~proc:"sum_all" ~args
      with
      | Ok v ->
        if Float.abs (Value.to_number v -. expected_money n) > 1e-6 then
          incr bad
      | Error _ -> incr bad)
    replicas

type steady = {
  st_txns : int;
  st_committed : int;
  st_aborted : int;
  st_rounds : int;
  st_ro_reads : int;
  st_ro_bad : int;
  st_durable_epoch : int;
  st_watermarks : int list;
  st_bytes : int list;
  st_obs_rows : int;
  st_converged : bool;
  st_identical : bool;
  st_money_ok : bool;
  st_audit_ok : bool;
  st_reads_ok : bool;
}

let run_steady ~seed ~fast =
  let n = if fast then 32 else 128 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = Harness.build decl cfg in
  let log = Wal.in_memory () in
  DB.attach_wal ~durable:true db log;
  let replicas = [ Replica.create ~id:0 decl; Replica.create ~id:1 decl ] in
  let sh =
    Replica.Shipper.create
      ~entries:(fun () -> Wal.entries log)
      ~durable_epoch:(fun () -> DB.durable_epoch db)
      ~gen:(fun () -> DB.generation db)
      replicas
  in
  let txns = if fast then 150 else 600 in
  let rng = Util.Rng.create seed in
  let ok = ref 0 and err = ref 0 in
  let served = ref 0 and bad = ref 0 in
  let eng = DB.engine db in
  Sim.Engine.spawn eng (fun () ->
      for i = 1 to txns do
        let r = SB.gen_conserving rng ~n in
        (match
           (DB.exec_txn db ~reactor:r.Wl.reactor ~proc:r.Wl.proc
              ~args:r.Wl.args)
             .DB.result
         with
        | Ok _ -> incr ok
        | Error _ -> incr err);
        if i mod 10 = 0 then begin
          Replica.Shipper.round sh;
          audit_replica_reads ~n replicas served bad
        end
      done);
  ignore (Sim.Engine.run eng);
  Replica.Shipper.final_ship sh;
  let durable = DB.durable_epoch db in
  let converged =
    List.for_all (fun r -> Replica.watermark r = durable) replicas
  in
  let prim = Faultsim.snapshot (primary_cats db (SB.customers n)) in
  let identical =
    List.for_all
      (fun r -> Faultsim.diff prim (Faultsim.snapshot (Replica.catalogs r))
                = None)
      replicas
  in
  let money =
    List.for_all (fun r -> money_ok ~n (replica_cats r)) replicas
  in
  let audit =
    List.for_all
      (fun r ->
        match Faultsim.check_secondaries (Replica.catalogs r) with
        | Ok () -> true
        | Error _ -> false)
      replicas
  in
  let coll = Obs.Collector.create ~clock:Obs.Virtual ~containers:2 () in
  Replica.Shipper.publish_obs sh coll;
  let report = Obs.Report.summarize coll in
  let obs_rows = List.length report.Obs.Report.r_repl in
  let obs_zero_lag =
    List.for_all
      (fun rr -> rr.Obs.rr_epochs_behind = 0 && rr.Obs.rr_bytes_behind = 0)
      report.Obs.Report.r_repl
  in
  {
    st_txns = txns;
    st_committed = !ok;
    st_aborted = !err;
    st_rounds = Replica.Shipper.rounds sh;
    st_ro_reads = !served;
    st_ro_bad = !bad;
    st_durable_epoch = durable;
    st_watermarks = List.map Replica.watermark replicas;
    st_bytes = List.map Replica.bytes_applied replicas;
    st_obs_rows = obs_rows;
    st_converged = converged && obs_zero_lag;
    st_identical = identical;
    st_money_ok = money;
    st_audit_ok = audit;
    st_reads_ok = (!served > 0 && !bad = 0);
  }

type failover = {
  fo_attempts : int;
  fo_committed : int;
  fo_aborted : int;
  fo_fenced : int;
  fo_committed_writes : int;
  fo_kills : int;
  fo_fenced_flag : bool;
  fo_accounting_ok : bool;
  fo_promoted : int;
  fo_promoted_gen : int;
  fo_promoted_epoch : int;
  fo_log_entries : int;
  fo_pause_ms : float;
  fo_promotion_ok : bool;
  fo_no_lost_ok : bool;
  fo_money_ok : bool;
  fo_pause_ok : bool;
  fo_resume_committed : int;
  fo_resume_money_ok : bool;
}

let run_failover ~seed ~fast =
  let n = if fast then 32 else 128 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = Harness.build decl cfg in
  let log = Wal.in_memory () in
  DB.attach_wal ~durable:true db log;
  let chaos = Chaos.make ~seed ~kind:Chaos.Kill_primary ~p:0.05 () in
  DB.attach_chaos db chaos;
  let replicas = [ Replica.create ~id:0 decl; Replica.create ~id:1 decl ] in
  let sh =
    Replica.Shipper.create
      ~entries:(fun () -> Wal.entries log)
      ~durable_epoch:(fun () -> DB.durable_epoch db)
      ~gen:(fun () -> DB.generation db)
      replicas
  in
  let txns = if fast then 200 else 800 in
  let rng = Util.Rng.create seed in
  let ok = ref 0 and err = ref 0 and ok_writes = ref 0 in
  let eng = DB.engine db in
  Sim.Engine.spawn eng (fun () ->
      for i = 1 to txns do
        let r = SB.gen_conserving rng ~n in
        (match
           (DB.exec_txn db ~reactor:r.Wl.reactor ~proc:r.Wl.proc
              ~args:r.Wl.args)
             .DB.result
         with
        | Ok _ ->
          incr ok;
          if is_write_proc r.Wl.proc then incr ok_writes
        | Error _ -> incr err);
        if i mod 10 = 0 then Replica.Shipper.round sh
      done);
  ignore (Sim.Engine.run eng);
  let fenced = DB.fenced db in
  let refusals = DB.n_fenced_refusals db in
  let kills = Chaos.injections chaos in
  (* The failover pause: hand the surviving durable log to the replicas
     and run the promotion oracle. Wall clock, not virtual — this is the
     orchestrator's own work, not simulated execution. *)
  let t0 = Unix.gettimeofday () in
  Replica.Shipper.final_ship sh;
  let promoted = Option.get (Replica.freshest replicas) in
  let promo = Replica.promote ~gen:(DB.generation db + 1) promoted in
  let pause_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let committed_primary = committed_entries (Wal.entries log) in
  let committed_replica = committed_entries (Replica.log promoted) in
  let no_lost =
    committed_replica = committed_primary && committed_primary = !ok_writes
  in
  let money = money_ok ~n (replica_cats promoted) in
  (* Resume a fresh engine from the promoted log: recovery-by-replay
     into new catalogs plus the shipped placements, admitting under the
     promoted generation. A fresh engine's epoch clock restarts at 1, so
     snapshot reads (which would run below the replayed records' epochs)
     are disabled on the resumed node — DESIGN.md §12. *)
  let db2 = Harness.build decl cfg in
  DB.set_snapshots db2 false;
  (match promo with
  | Ok pm -> DB.set_generation db2 pm.Replica.pm_gen
  | Error _ -> ());
  ignore
    (Wal.replay (Replica.log promoted)
       ~catalog_of:(fun nm -> DB.catalog_of db2 nm));
  DB.apply_placements db2 (Replica.placements promoted);
  let resume_txns = txns / 4 in
  let ok2 = ref 0 in
  let eng2 = DB.engine db2 in
  Sim.Engine.spawn eng2 (fun () ->
      for _ = 1 to resume_txns do
        let r = SB.gen_conserving rng ~n in
        match
          (DB.exec_txn db2 ~reactor:r.Wl.reactor ~proc:r.Wl.proc
             ~args:r.Wl.args)
            .DB.result
        with
        | Ok _ -> incr ok2
        | Error _ -> ()
      done);
  ignore (Sim.Engine.run eng2);
  let resume_money = money_ok ~n (List.map snd (primary_cats db2 (SB.customers n))) in
  {
    fo_attempts = txns;
    fo_committed = !ok;
    fo_aborted = !err;
    fo_fenced = refusals;
    fo_committed_writes = !ok_writes;
    fo_kills = kills;
    fo_fenced_flag = fenced;
    fo_accounting_ok = (!ok + !err = txns && refusals <= !err && kills = 1);
    fo_promoted = Replica.id promoted;
    fo_promoted_gen =
      (match promo with Ok pm -> pm.Replica.pm_gen | Error _ -> -1);
    fo_promoted_epoch =
      (match promo with Ok pm -> pm.Replica.pm_epoch | Error _ -> -1);
    fo_log_entries = List.length (Replica.log promoted);
    fo_pause_ms = pause_ms;
    fo_promotion_ok =
      (match promo with
      | Ok pm -> fenced && pm.Replica.pm_gen > DB.generation db
      | Error _ -> false);
    fo_no_lost_ok = no_lost;
    fo_money_ok = money;
    fo_pause_ok = pause_ms < 1000.;
    fo_resume_committed = !ok2;
    fo_resume_money_ok = (resume_money && !ok2 > 0);
  }

type shipfault = {
  sf_fault : string;
  sf_injections : int;
  sf_dropped : int;
  sf_delayed : int;
  sf_refused : int;
  sf_rounds : int;
  sf_converged : bool;
  sf_money_ok : bool;
  sf_fired_ok : bool;
}

let run_ship_chaos ~seed ~fast ~kind =
  let n = if fast then 32 else 96 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = Harness.build decl cfg in
  let log = Wal.in_memory () in
  DB.attach_wal ~durable:true db log;
  let chaos = Chaos.make ~seed ~kind ~p:0.4 () in
  let replicas = [ Replica.create ~id:0 decl; Replica.create ~id:1 decl ] in
  let sh =
    Replica.Shipper.create ~chaos
      ~entries:(fun () -> Wal.entries log)
      ~durable_epoch:(fun () -> DB.durable_epoch db)
      ~gen:(fun () -> DB.generation db)
      replicas
  in
  let txns = if fast then 150 else 500 in
  let rng = Util.Rng.create seed in
  let eng = DB.engine db in
  Sim.Engine.spawn eng (fun () ->
      for i = 1 to txns do
        let r = SB.gen_conserving rng ~n in
        ignore
          (DB.exec_txn db ~reactor:r.Wl.reactor ~proc:r.Wl.proc ~args:r.Wl.args);
        if i mod 5 = 0 then Replica.Shipper.round sh
      done);
  ignore (Sim.Engine.run eng);
  Replica.Shipper.final_ship sh;
  let durable = DB.durable_epoch db in
  let converged =
    List.for_all (fun r -> Replica.watermark r = durable) replicas
  in
  let money =
    List.for_all (fun r -> money_ok ~n (replica_cats r)) replicas
  in
  {
    sf_fault = Chaos.kind_name kind;
    sf_injections = Chaos.injections chaos;
    sf_dropped = Replica.Shipper.dropped sh;
    sf_delayed = Replica.Shipper.delayed sh;
    sf_refused = List.fold_left (fun a r -> a + Replica.n_refused r) 0 replicas;
    sf_rounds = Replica.Shipper.rounds sh;
    sf_converged = converged;
    sf_money_ok = money;
    sf_fired_ok = Chaos.injections chaos > 0;
  }

(* ------------------------------------------------------------------ *)

let () =
  let fast = ref false in
  let seed = ref 42 in
  let out = ref "BENCH_replication.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--seed" :: s :: rest ->
      seed := int_of_string s;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let fast = !fast and seed = !seed in
  Printf.printf "Replication bench (seed %d)\n%!" seed;
  let st = run_steady ~seed ~fast in
  Printf.printf
    "  steady:   %d txns (%d ok), %d rounds, %d replica reads (%d bad), \
     durable epoch %d, watermarks [%s]\n%!"
    st.st_txns st.st_committed st.st_rounds st.st_ro_reads st.st_ro_bad
    st.st_durable_epoch
    (String.concat "; " (List.map string_of_int st.st_watermarks));
  let fo = run_failover ~seed ~fast in
  Printf.printf
    "  failover: %d attempts = %d ok + %d aborted (%d fenced refusals), %d \
     kill, promoted replica %d gen %d epoch %d (%d entries, pause %.1f ms), \
     resumed %d ok\n%!"
    fo.fo_attempts fo.fo_committed fo.fo_aborted fo.fo_fenced fo.fo_kills
    fo.fo_promoted fo.fo_promoted_gen fo.fo_promoted_epoch fo.fo_log_entries
    fo.fo_pause_ms fo.fo_resume_committed;
  let drop = run_ship_chaos ~seed ~fast ~kind:Chaos.Drop_shipment in
  let delay = run_ship_chaos ~seed ~fast ~kind:Chaos.Delay_shipment in
  List.iter
    (fun sf ->
      Printf.printf
        "  %s: %d injections (%d dropped, %d delayed), %d rounds, converged \
         %b\n%!"
        sf.sf_fault sf.sf_injections sf.sf_dropped sf.sf_delayed sf.sf_rounds
        sf.sf_converged)
    [ drop; delay ];
  let shipfault_json sf =
    J.Obj
      [
        ("fault", J.Str sf.sf_fault);
        ("injections", J.Num (float_of_int sf.sf_injections));
        ("dropped", J.Num (float_of_int sf.sf_dropped));
        ("delayed", J.Num (float_of_int sf.sf_delayed));
        ("refused", J.Num (float_of_int sf.sf_refused));
        ("rounds", J.Num (float_of_int sf.sf_rounds));
        ("converged", J.Bool sf.sf_converged);
        ("money_ok", J.Bool sf.sf_money_ok);
        ("fired", J.Bool sf.sf_fired_ok);
      ]
  in
  let steady_ok =
    st.st_converged && st.st_identical && st.st_money_ok && st.st_audit_ok
    && st.st_reads_ok && st.st_obs_rows = 2
  in
  let failover_ok =
    fo.fo_fenced_flag && fo.fo_accounting_ok && fo.fo_promotion_ok
    && fo.fo_no_lost_ok && fo.fo_money_ok && fo.fo_pause_ok
    && fo.fo_resume_money_ok
  in
  let chaos_ok =
    drop.sf_fired_ok && drop.sf_converged && drop.sf_money_ok
    && delay.sf_fired_ok && delay.sf_converged && delay.sf_money_ok
  in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "replication");
        ("schema_version", J.Num (float_of_int Obs.Report.schema_version));
        ("seed", J.Num (float_of_int seed));
        ( "steady",
          J.Obj
            [
              ("txns", J.Num (float_of_int st.st_txns));
              ("committed", J.Num (float_of_int st.st_committed));
              ("aborted", J.Num (float_of_int st.st_aborted));
              ("shipping_rounds", J.Num (float_of_int st.st_rounds));
              ("replica_reads", J.Num (float_of_int st.st_ro_reads));
              ("replica_reads_bad", J.Num (float_of_int st.st_ro_bad));
              ("durable_epoch", J.Num (float_of_int st.st_durable_epoch));
              ( "watermarks",
                J.List
                  (List.map (fun w -> J.Num (float_of_int w)) st.st_watermarks)
              );
              ( "bytes_applied",
                J.List
                  (List.map (fun b -> J.Num (float_of_int b)) st.st_bytes) );
              ("obs_repl_rows", J.Num (float_of_int st.st_obs_rows));
            ] );
        ( "failover",
          J.Obj
            [
              ("attempts", J.Num (float_of_int fo.fo_attempts));
              ("committed", J.Num (float_of_int fo.fo_committed));
              ("aborted", J.Num (float_of_int fo.fo_aborted));
              ("fenced_refusals", J.Num (float_of_int fo.fo_fenced));
              ("committed_writes", J.Num (float_of_int fo.fo_committed_writes));
              ("kill_injections", J.Num (float_of_int fo.fo_kills));
              ("promoted_replica", J.Num (float_of_int fo.fo_promoted));
              ("promoted_generation", J.Num (float_of_int fo.fo_promoted_gen));
              ("promoted_epoch", J.Num (float_of_int fo.fo_promoted_epoch));
              ("log_entries", J.Num (float_of_int fo.fo_log_entries));
              ("pause_ms", J.Num fo.fo_pause_ms);
              ("resume_committed", J.Num (float_of_int fo.fo_resume_committed));
            ] );
        ("shipment_faults", J.List [ shipfault_json drop; shipfault_json delay ]);
        ( "gates",
          J.Obj
            [
              ("steady_converged", J.Bool st.st_converged);
              ("steady_identical_to_primary", J.Bool st.st_identical);
              ("steady_replica_reads_consistent", J.Bool st.st_reads_ok);
              ("steady_money_ok", J.Bool st.st_money_ok);
              ("steady_secondary_audit_ok", J.Bool st.st_audit_ok);
              ("failover_fenced", J.Bool fo.fo_fenced_flag);
              ("failover_accounting_ok", J.Bool fo.fo_accounting_ok);
              ("failover_promotion_ok", J.Bool fo.fo_promotion_ok);
              ("failover_zero_lost_committed", J.Bool fo.fo_no_lost_ok);
              ("failover_money_ok", J.Bool fo.fo_money_ok);
              ("failover_pause_ok", J.Bool fo.fo_pause_ok);
              ("failover_resume_ok", J.Bool fo.fo_resume_money_ok);
              ("shipment_chaos_ok", J.Bool chaos_ok);
            ] );
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  if not steady_ok then
    prerr_endline "FAIL: steady-state replication gates violated";
  if not failover_ok then prerr_endline "FAIL: failover gates violated";
  if not chaos_ok then prerr_endline "FAIL: shipment-chaos gates violated";
  if not (steady_ok && failover_ok && chaos_ok) then exit 1
