(* Fast fault-injection sweep for the bench smoke run: build seeded
   Smallbank and TPC-C histories with a midpoint checkpoint, crash each at
   seeded fault points (torn tails, byte corruption, damaged checkpoints)
   and verify recovery equivalence. Exits non-zero on any failure, so the
   smoke script doubles as a crash-safety regression gate.

     dune exec bench/crash_sweep.exe -- [--seeds N] [--fast]

   [--seeds N] sets the total number of crash points (default 150, split
   60/40 between Smallbank and TPC-C); [--fast] is shorthand for 50. *)

open Util
module DB = Reactdb.Database
module W = Workloads

let exec db (req : W.Wl.request) =
  ignore
    (DB.exec_txn db ~reactor:req.W.Wl.reactor ~proc:req.W.Wl.proc
       ~args:req.W.Wl.args)

(* Two-phase history: workload, quiescent checkpoint (recording the log
   position covered), more workload, close. *)
let build_history ~decl ~config ~names ~log_path ~ck_path run_phase =
  let db = Harness.build decl config in
  let log = Wal.to_file log_path in
  DB.attach_wal db log;
  run_phase db 0;
  Wal.flush log;
  let logged, tail = Wal.read_file_tolerant log_path in
  (match tail with
  | Wal.Clean -> ()
  | Wal.Torn { reason; _ } -> failwith ("reference log torn: " ^ reason));
  let max_tid =
    List.fold_left (fun m e -> Stdlib.max m e.Wal.le_tid) 0 logged
  in
  Checkpoint.write_file ck_path
    (Checkpoint.capture ~tid:max_tid ~covers:(List.length logged)
       (List.map (fun n -> (n, DB.catalog_of db n)) names));
  run_phase db 1;
  Wal.flush log;
  Wal.close log

let sb_customers = 6
let sb_initial = 10_000.
let sb_names = W.Smallbank.customers sb_customers
let sb_decl () = W.Smallbank.decl ~customers:sb_customers ~initial:sb_initial ()

let sb_run_phase db phase =
  let eng = DB.engine db in
  let formulations =
    [| W.Smallbank.Fully_sync; W.Smallbank.Partially_async;
       W.Smallbank.Fully_async; W.Smallbank.Opt |]
  in
  for w = 0 to 2 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create (611 + (100 * phase) + w) in
        for _ = 1 to 12 do
          let src = Rng.int rng sb_customers in
          let dst = Rng.pick_except rng sb_customers src in
          exec db
            (W.Smallbank.multi_transfer_request (Rng.pick rng formulations)
               ~src:(W.Smallbank.customer_name src)
               ~dests:[ W.Smallbank.customer_name dst ]
               ~amount:(float_of_int (1 + Rng.int rng 8)))
        done)
  done;
  ignore (Sim.Engine.run eng)

let sb_conservation cats =
  let expected = float_of_int sb_customers *. 2. *. sb_initial in
  let total = W.Smallbank.total_money (List.map snd cats) in
  if Float.abs (total -. expected) < 1e-6 then Ok ()
  else
    Error
      (Printf.sprintf "money not conserved: %.2f, expected %.2f" total
         expected)

let tpcc_warehouses = 2
let tpcc_names = W.Tpcc.warehouses tpcc_warehouses

let tpcc_decl () =
  W.Tpcc.decl ~warehouses:tpcc_warehouses ~sizes:W.Tpcc.small_sizes ()

let tpcc_run_phase seq db phase =
  let p =
    W.Tpcc.params ~sizes:W.Tpcc.small_sizes
      ~remote_mode:(W.Tpcc.Per_item 0.3) ~remote_payment_prob:0.3
      tpcc_warehouses
  in
  let eng = DB.engine db in
  for w = 0 to 1 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create (8_800 + (100 * phase) + w) in
        let home = 1 + (w mod tpcc_warehouses) in
        for _ = 1 to 10 do
          exec db (W.Tpcc.gen_mix rng p ~home ~seq)
        done)
  done;
  ignore (Sim.Engine.run eng)

let sweep ~label ~decl ~config ~names ~run_phase ?extra_check ~seed0 n_seeds =
  let log_path = Filename.temp_file "crash_sweep" ".log" in
  let ck_path = Filename.temp_file "crash_sweep" ".ckpt" in
  let scratch = Filename.temp_file "crash_sweep" ".scratch" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ log_path; ck_path; scratch ])
    (fun () ->
      build_history ~decl:(decl ()) ~config ~names ~log_path ~ck_path
        run_phase;
      let report =
        Faultsim.crash_sweep ~checkpoint:ck_path ?extra_check ~log:log_path
          ~scratch ~decl:(decl ())
          ~seeds:(List.init n_seeds (fun i -> seed0 + i))
          ()
      in
      Printf.printf
        "%-10s %4d crash points: %d clean tails, %d torn tails, %d \
         checkpoint fallbacks, %d failures\n"
        label report.Faultsim.rp_points report.Faultsim.rp_clean_tail
        report.Faultsim.rp_torn_tail report.Faultsim.rp_ckpt_fallback
        (List.length report.Faultsim.rp_failures);
      List.iter
        (fun (seed, m) -> Printf.printf "  FAIL seed %d: %s\n" seed m)
        report.Faultsim.rp_failures;
      report.Faultsim.rp_failures = [])

let () =
  let seeds = ref 150 in
  let rec parse = function
    | [] -> ()
    | "--seeds" :: n :: rest ->
      seeds := int_of_string n;
      parse rest
    | "--fast" :: rest ->
      seeds := 50;
      parse rest
    | a :: _ ->
      Printf.eprintf "crash_sweep: unknown argument %s\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sb_seeds = !seeds * 3 / 5 in
  let tpcc_seeds = !seeds - sb_seeds in
  let ok_sb =
    sweep ~label:"smallbank" ~decl:sb_decl
      ~config:
        (Reactdb.Config.shared_everything ~executors:2 ~affinity:true
           sb_names)
      ~names:sb_names ~run_phase:sb_run_phase ~extra_check:sb_conservation
      ~seed0:40_000 sb_seeds
  in
  let ok_tpcc =
    sweep ~label:"tpcc" ~decl:tpcc_decl
      ~config:
        (Reactdb.Config.shared_everything ~executors:2 ~affinity:true
           tpcc_names)
      ~names:tpcc_names
      ~run_phase:(tpcc_run_phase (ref 0))
      ~seed0:50_000 tpcc_seeds
  in
  if not (ok_sb && ok_tpcc) then exit 1
