(* Commit-path scenarios, shared by two executables:

   - trajectory.exe runs them and re-emits `BENCH_commit_path.json` so that
     every PR has a perf baseline to diff against;
   - predictability.exe re-runs the direct scenarios against the committed
     baseline to enforce the no-op-tracing-sink overhead ceiling.

   The direct scenarios drive the OCC/storage layers straight from a tight
   loop (real wall-clock per-transaction latency); the simulator scenario
   drives a cross-container smallbank deployment end-to-end and reports
   virtual-time latencies alongside real ops/sec. *)

open Util

type scenario_result = {
  sr_name : string;
  sr_ops : int;
  sr_elapsed_s : float;
  sr_ops_per_sec : float;
  sr_p50_us : float;
  sr_p99_us : float;
  sr_latency_kind : string; (* "wall" or "sim" *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let i = int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) i))
  end

(* Time [step] per call; warmup rounds are run but not recorded. *)
let run_direct ~name ~warmup ~iters step =
  for i = 0 to warmup - 1 do
    step i
  done;
  let lats = Array.make iters 0. in
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    let s = Unix.gettimeofday () in
    step (warmup + i);
    lats.(i) <- (Unix.gettimeofday () -. s) *. 1e6
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort Float.compare lats;
  {
    sr_name = name;
    sr_ops = iters;
    sr_elapsed_s = elapsed;
    sr_ops_per_sec = float_of_int iters /. elapsed;
    sr_p50_us = percentile lats 50.;
    sr_p99_us = percentile lats 99.;
    sr_latency_kind = "wall";
  }

let txn_ids = ref 0

let fresh_txn () =
  incr txn_ids;
  Occ.Txn.create ~id:!txn_ids

let must_commit = function
  | Ok _ -> ()
  | Error r ->
    failwith ("commitpath: unexpected abort: " ^ Occ.Commit.fail_message r)

(* ---- read-heavy: 16 point reads + 1 read-modify-write, single container ---- *)

let kv_schema =
  Storage.Schema.make ~name:"kv"
    ~columns:[ ("k", Value.TInt); ("v", Value.TInt) ]
    ~key:[ "k" ]

let fill_kv tbl n =
  for i = 0 to n - 1 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Value.Int i; Value.Int 0 |]))
  done

let read_heavy ~iters =
  let n = 10_000 in
  let tbl = Storage.Table.create kv_schema in
  fill_kv tbl n;
  let rng = Rng.create 7 in
  run_direct ~name:"read_heavy" ~warmup:(iters / 10) ~iters (fun _ ->
      let txn = fresh_txn () in
      for _ = 1 to 16 do
        match Storage.Table.find tbl [| Value.Int (Rng.int rng n) |] with
        | Some r -> ignore (Occ.Txn.read txn ~container:0 r)
        | None -> assert false
      done;
      let k = Rng.int rng n in
      let key = [| Value.Int k |] in
      (match Storage.Table.find tbl key with
      | Some r -> (
        match Occ.Txn.read txn ~container:0 r with
        | Some data ->
          Occ.Txn.write txn ~container:0 ~table:tbl ~key r
            [| data.(0); Value.Int (Value.to_int data.(1) + 1) |]
        | None -> assert false)
      | None -> assert false);
      must_commit (Occ.Commit.commit_single txn ~epoch:1 ~container:0))

(* ---- write-heavy: 8 RMWs (secondary-index columns touched) + 2 inserts +
   2 deletes of the previous iteration's inserts, single container ---- *)

let wh_schema =
  Storage.Schema.make ~name:"wh"
    ~columns:
      [ ("k", Value.TInt); ("a", Value.TInt); ("b", Value.TStr);
        ("c", Value.TInt) ]
    ~key:[ "k" ]

let write_heavy ~iters =
  let n = 10_000 in
  let tbl =
    Storage.Table.create ~secondaries:[ ("by_ab", [ "a"; "b" ]) ] wh_schema
  in
  for i = 0 to n - 1 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false
            [| Value.Int i; Value.Int (i mod 97); Value.Str "x"; Value.Int 0 |]))
  done;
  let rng = Rng.create 11 in
  run_direct ~name:"write_heavy" ~warmup:(iters / 10) ~iters (fun i ->
      let txn = fresh_txn () in
      (* RMW 8 rows, moving them within the secondary index. *)
      for _ = 1 to 8 do
        let k = Rng.int rng n in
        let key = [| Value.Int k |] in
        match Storage.Table.find tbl key with
        | Some r -> (
          match Occ.Txn.read txn ~container:0 r with
          | Some data ->
            Occ.Txn.write txn ~container:0 ~table:tbl ~key r
              [| data.(0); Value.Int (Rng.int rng 97); data.(2);
                 Value.Int (Value.to_int data.(3) + 1) |]
          | None -> assert false)
        | None -> assert false
      done;
      (* Two fresh inserts; delete the two rows inserted last iteration, so
         the table size stays constant. *)
      let base = n + (2 * i) in
      Occ.Txn.insert txn ~container:0 ~table:tbl
        [| Value.Int base; Value.Int (base mod 97); Value.Str "y"; Value.Int 0 |];
      Occ.Txn.insert txn ~container:0 ~table:tbl
        [| Value.Int (base + 1); Value.Int ((base + 1) mod 97); Value.Str "y";
           Value.Int 0 |];
      if i > 0 then begin
        let prev = n + (2 * (i - 1)) in
        List.iter
          (fun k ->
            let key = [| Value.Int k |] in
            match Storage.Table.find tbl key with
            | Some r -> Occ.Txn.delete txn ~container:0 ~table:tbl ~key r
            | None -> assert false)
          [ prev; prev + 1 ]
      end;
      must_commit (Occ.Commit.commit_single txn ~epoch:1 ~container:0))

(* ---- durable write-heavy: the write_heavy transaction shape plus redo
   logging to a real file. Two durability disciplines:

   - write_heavy_wal appends and flushes one record per commit (every
     transaction pays its own write syscall);
   - write_heavy_group_commit coalesces a window of commits into one
     [Wal.append_many] plus a single flush — the discipline the runtime's
     group-commit WAL sink applies per epoch.

   In this closed loop the group variant defers durability to the window
   boundary, so per-iteration latency is bursty by construction (most
   commits log for free, every [group_window]-th pays the flush);
   throughput — total time to make all commits durable — is the honest
   comparison between the two. *)

let write_heavy_durable ~name ~iters ~log_commit ~finish =
  let n = 10_000 in
  let tbl =
    Storage.Table.create ~secondaries:[ ("by_ab", [ "a"; "b" ]) ] wh_schema
  in
  for i = 0 to n - 1 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false
            [| Value.Int i; Value.Int (i mod 97); Value.Str "x"; Value.Int 0 |]))
  done;
  let rng = Rng.create 11 in
  let result =
    run_direct ~name ~warmup:(iters / 10) ~iters (fun i ->
        let txn = fresh_txn () in
        let writes = ref [] in
        let put row =
          writes := Wal.Put { reactor = "wh"; table = "wh"; row } :: !writes
        in
        for _ = 1 to 8 do
          let k = Rng.int rng n in
          let key = [| Value.Int k |] in
          match Storage.Table.find tbl key with
          | Some r -> (
            match Occ.Txn.read txn ~container:0 r with
            | Some data ->
              let row =
                [| data.(0); Value.Int (Rng.int rng 97); data.(2);
                   Value.Int (Value.to_int data.(3) + 1) |]
              in
              Occ.Txn.write txn ~container:0 ~table:tbl ~key r row;
              put row
            | None -> assert false)
          | None -> assert false
        done;
        let base = n + (2 * i) in
        let row0 =
          [| Value.Int base; Value.Int (base mod 97); Value.Str "y";
             Value.Int 0 |]
        and row1 =
          [| Value.Int (base + 1); Value.Int ((base + 1) mod 97); Value.Str "y";
             Value.Int 0 |]
        in
        Occ.Txn.insert txn ~container:0 ~table:tbl row0;
        put row0;
        Occ.Txn.insert txn ~container:0 ~table:tbl row1;
        put row1;
        if i > 0 then begin
          let prev = n + (2 * (i - 1)) in
          List.iter
            (fun k ->
              let key = [| Value.Int k |] in
              match Storage.Table.find tbl key with
              | Some r ->
                Occ.Txn.delete txn ~container:0 ~table:tbl ~key r;
                writes :=
                  Wal.Del { reactor = "wh"; table = "wh"; key } :: !writes
              | None -> assert false)
            [ prev; prev + 1 ]
        end;
        match Occ.Commit.commit_single txn ~epoch:1 ~container:0 with
        | Ok tid ->
          log_commit
            { Wal.le_txn = !txn_ids; le_tid = tid;
              le_writes = List.rev !writes }
        | Error r ->
          failwith ("commitpath: unexpected abort: " ^ Occ.Commit.fail_message r))
  in
  finish ();
  result

let write_heavy_wal ~iters =
  let path = Filename.temp_file "commitpath_wal" ".log" in
  let log = Wal.to_file path in
  write_heavy_durable ~name:"write_heavy_wal" ~iters
    ~log_commit:(fun e ->
      Wal.append log e;
      Wal.flush log)
    ~finish:(fun () ->
      Wal.close log;
      Sys.remove path)

let group_window = 64

let write_heavy_group ~iters =
  let path = Filename.temp_file "commitpath_group" ".log" in
  let log = Wal.to_file path in
  let batch = ref [] in
  let drain () =
    if !batch <> [] then begin
      Wal.append_many log (List.rev !batch);
      Wal.flush log;
      batch := []
    end
  in
  write_heavy_durable ~name:"write_heavy_group_commit" ~iters
    ~log_commit:(fun e ->
      batch := e :: !batch;
      if List.length !batch >= group_window then drain ())
    ~finish:(fun () ->
      drain ();
      Wal.close log;
      Sys.remove path)

(* ---- cross-container 2PC: 4 RMWs in each of two containers ---- *)

let cross_2pc ~iters =
  let n = 10_000 in
  let tbl0 = Storage.Table.create kv_schema in
  let tbl1 = Storage.Table.create kv_schema in
  fill_kv tbl0 n;
  fill_kv tbl1 n;
  let rng = Rng.create 13 in
  let rmw txn ~container tbl =
    let k = Rng.int rng n in
    let key = [| Value.Int k |] in
    match Storage.Table.find tbl key with
    | Some r -> (
      match Occ.Txn.read txn ~container r with
      | Some data ->
        Occ.Txn.write txn ~container ~table:tbl ~key r
          [| data.(0); Value.Int (Value.to_int data.(1) + 1) |]
      | None -> assert false)
    | None -> assert false
  in
  run_direct ~name:"cross_container_2pc" ~warmup:(iters / 10) ~iters (fun _ ->
      let txn = fresh_txn () in
      for _ = 1 to 4 do
        rmw txn ~container:0 tbl0
      done;
      for _ = 1 to 4 do
        rmw txn ~container:1 tbl1
      done;
      if
        Result.is_ok (Occ.Commit.prepare txn ~container:0)
        && Result.is_ok (Occ.Commit.prepare txn ~container:1)
      then begin
        let tid = Occ.Commit.compute_tid txn ~epoch:1 in
        Occ.Commit.install txn ~container:0 ~tid;
        Occ.Commit.install txn ~container:1 ~tid
      end
      else failwith "commitpath: 2pc prepare failed")

(* ---- simulator-driven smallbank: cross-container multi-transfers through
   the full ReactDB stack; latencies are virtual (simulated) time ---- *)

let sim_smallbank ~iters =
  let n_groups = 4 and group_size = 4 in
  let n_cust = n_groups * group_size in
  let groups =
    List.init n_groups (fun g ->
        List.init group_size (fun k ->
            Workloads.Smallbank.customer_name ((g * group_size) + k)))
  in
  let db =
    Harness.build
      (Workloads.Smallbank.decl ~customers:n_cust ())
      (Reactdb.Config.shared_nothing groups)
  in
  let src = Workloads.Smallbank.customer_name 0 in
  let dests =
    List.init 3 (fun i ->
        Workloads.Smallbank.customer_name (((i + 1) mod n_groups) * group_size))
  in
  let t0 = Unix.gettimeofday () in
  let outs =
    Harness.measure_txns db ~warmup:(iters / 10) ~n:iters (fun _rng ->
        Workloads.Smallbank.multi_transfer_request Workloads.Smallbank.Fully_sync
          ~src ~dests ~amount:1.)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let lats =
    Array.of_list
      (List.filter_map
         (fun o ->
           match o.Reactdb.Database.result with
           | Ok _ -> Some o.Reactdb.Database.latency
           | Error _ -> None)
         outs)
  in
  Array.sort Float.compare lats;
  {
    sr_name = "sim_smallbank_2pc";
    sr_ops = iters;
    sr_elapsed_s = elapsed;
    sr_ops_per_sec = float_of_int iters /. elapsed;
    sr_p50_us = percentile lats 50.;
    sr_p99_us = percentile lats 99.;
    sr_latency_kind = "sim";
  }

(* ---- simulator-driven read-only snapshot: the same cross-container
   smallbank deployment, but the workload is a declared-read-only [sum_all]
   fan-out over three remote customers — frozen-epoch version-chain reads,
   no read-set, no validation, no 2PC ---- *)

let sim_readonly_snapshot ~iters =
  let n_groups = 4 and group_size = 4 in
  let n_cust = n_groups * group_size in
  let groups =
    List.init n_groups (fun g ->
        List.init group_size (fun k ->
            Workloads.Smallbank.customer_name ((g * group_size) + k)))
  in
  let db =
    Harness.build
      (Workloads.Smallbank.decl ~customers:n_cust ())
      (Reactdb.Config.shared_nothing groups)
  in
  let src = Workloads.Smallbank.customer_name 0 in
  let dests =
    List.init 3 (fun i ->
        Workloads.Smallbank.customer_name (((i + 1) mod n_groups) * group_size))
  in
  let args = List.map (fun c -> Value.Str c) dests in
  let t0 = Unix.gettimeofday () in
  let outs =
    Harness.measure_txns db ~warmup:(iters / 10) ~n:iters (fun _rng ->
        Workloads.Wl.request src "sum_all" args)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let lats =
    Array.of_list
      (List.filter_map
         (fun o ->
           match o.Reactdb.Database.result with
           | Ok _ -> Some o.Reactdb.Database.latency
           | Error _ -> None)
         outs)
  in
  if Array.length lats <> iters then
    failwith "commitpath: read-only snapshot transaction aborted";
  Array.sort Float.compare lats;
  {
    sr_name = "read_only_snapshot";
    sr_ops = iters;
    sr_elapsed_s = elapsed;
    sr_ops_per_sec = float_of_int iters /. elapsed;
    sr_p50_us = percentile lats 50.;
    sr_p99_us = percentile lats 99.;
    sr_latency_kind = "sim";
  }

(* ---- output ---- *)

let emit_json path results =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"commit_path\",\n";
  Printf.fprintf oc "  \"scenarios\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ops\": %d, \"elapsed_s\": %.6f, \"ops_per_sec\": \
         %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, \"latency\": %S}%s\n"
        r.sr_name r.sr_ops r.sr_elapsed_s r.sr_ops_per_sec r.sr_p50_us
        r.sr_p99_us r.sr_latency_kind
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc
