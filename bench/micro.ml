(* Bechamel micro-benchmarks of the engine primitives (real wall-clock time,
   unlike the virtual-time experiments): B+tree operations, OCC commit
   cycles, expression evaluation, and simulation-engine event throughput.
   Run with `--micro`. *)

open Bechamel
open Toolkit

module BT = Btree.Make (Int)

let bench_btree_insert =
  Test.make ~name:"btree insert 1k" (Staged.stage (fun () ->
      let t = BT.create () in
      for i = 0 to 999 do
        ignore (BT.insert t i i)
      done))

let bench_btree_lookup =
  let t = BT.create () in
  for i = 0 to 9_999 do
    ignore (BT.insert t i i)
  done;
  let idx = ref 0 in
  Test.make ~name:"btree lookup" (Staged.stage (fun () ->
      idx := (!idx + 7919) mod 10_000;
      ignore (BT.find t !idx)))

let bench_btree_range =
  let t = BT.create () in
  for i = 0 to 9_999 do
    ignore (BT.insert t i i)
  done;
  Test.make ~name:"btree range 100" (Staged.stage (fun () ->
      let n = ref 0 in
      BT.range t ~lo:5_000 ~hi:5_099 ~f:(fun _ _ ->
          incr n;
          true)))

let kv_schema =
  Storage.Schema.make ~name:"kv"
    ~columns:[ ("k", Util.Value.TInt); ("v", Util.Value.TInt) ]
    ~key:[ "k" ]

let bench_occ_commit =
  let tbl = Storage.Table.create kv_schema in
  for i = 0 to 999 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Util.Value.Int i; Util.Value.Int 0 |]))
  done;
  let ids = ref 0 in
  Test.make ~name:"occ read-modify-write commit" (Staged.stage (fun () ->
      incr ids;
      let txn = Occ.Txn.create ~id:!ids in
      let key = [| Util.Value.Int (!ids mod 1000) |] in
      (match Storage.Table.find tbl key with
      | Some r ->
        (match Occ.Txn.read txn ~container:0 r with
        | Some data ->
          Occ.Txn.write txn ~container:0 ~table:tbl ~key r
            [| data.(0); Util.Value.Int (Util.Value.to_int data.(1) + 1) |]
        | None -> ())
      | None -> ());
      ignore (Occ.Commit.commit_single txn ~epoch:1 ~container:0)))

(* Commit-path microbenchmarks (see also bench/trajectory.ml, which runs the
   same shapes with percentile reporting and JSON output). *)

let bench_commit_read_heavy =
  let tbl = Storage.Table.create kv_schema in
  for i = 0 to 999 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Util.Value.Int i; Util.Value.Int 0 |]))
  done;
  let ids = ref 0 in
  Test.make ~name:"occ commit read-heavy (16r+1w)" (Staged.stage (fun () ->
      incr ids;
      let txn = Occ.Txn.create ~id:!ids in
      for j = 0 to 15 do
        match Storage.Table.find tbl [| Util.Value.Int ((!ids + (j * 61)) mod 1000) |] with
        | Some r -> ignore (Occ.Txn.read txn ~container:0 r)
        | None -> ()
      done;
      let key = [| Util.Value.Int (!ids mod 1000) |] in
      (match Storage.Table.find tbl key with
      | Some r -> Occ.Txn.write txn ~container:0 ~table:tbl ~key r
                    [| key.(0); Util.Value.Int !ids |]
      | None -> ());
      ignore (Occ.Commit.commit_single txn ~epoch:1 ~container:0)))

let bench_commit_write_heavy =
  let sch =
    Storage.Schema.make ~name:"kv2"
      ~columns:[ ("k", Util.Value.TInt); ("a", Util.Value.TInt); ("v", Util.Value.TInt) ]
      ~key:[ "k" ]
  in
  let tbl = Storage.Table.create ~secondaries:[ ("by_a", [ "a" ]) ] sch in
  for i = 0 to 999 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false
            [| Util.Value.Int i; Util.Value.Int (i mod 31); Util.Value.Int 0 |]))
  done;
  let ids = ref 0 in
  Test.make ~name:"occ commit write-heavy (8 rmw)" (Staged.stage (fun () ->
      incr ids;
      let txn = Occ.Txn.create ~id:!ids in
      for j = 0 to 7 do
        let k = ((!ids * 13) + (j * 127)) mod 1000 in
        let key = [| Util.Value.Int k |] in
        match Storage.Table.find tbl key with
        | Some r -> (
          match Occ.Txn.read txn ~container:0 r with
          | Some data ->
            Occ.Txn.write txn ~container:0 ~table:tbl ~key r
              [| data.(0); Util.Value.Int ((!ids + j) mod 31);
                 Util.Value.Int !ids |]
          | None -> ())
        | None -> ()
      done;
      ignore (Occ.Commit.commit_single txn ~epoch:1 ~container:0)))

let bench_commit_2pc =
  let tbl0 = Storage.Table.create kv_schema in
  let tbl1 = Storage.Table.create kv_schema in
  List.iter
    (fun tbl ->
      for i = 0 to 999 do
        ignore
          (Storage.Table.insert tbl
             (Storage.Record.fresh ~absent:false
                [| Util.Value.Int i; Util.Value.Int 0 |]))
      done)
    [ tbl0; tbl1 ];
  let ids = ref 0 in
  Test.make ~name:"occ cross-container 2pc (4+4 rmw)" (Staged.stage (fun () ->
      incr ids;
      let txn = Occ.Txn.create ~id:!ids in
      let rmw ~container tbl j =
        let key = [| Util.Value.Int (((!ids * 17) + (j * 211)) mod 1000) |] in
        match Storage.Table.find tbl key with
        | Some r -> (
          match Occ.Txn.read txn ~container r with
          | Some data ->
            Occ.Txn.write txn ~container ~table:tbl ~key r
              [| data.(0); Util.Value.Int (Util.Value.to_int data.(1) + 1) |]
          | None -> ())
        | None -> ()
      in
      for j = 0 to 3 do rmw ~container:0 tbl0 j done;
      for j = 4 to 7 do rmw ~container:1 tbl1 j done;
      if Result.is_ok (Occ.Commit.prepare txn ~container:0)
         && Result.is_ok (Occ.Commit.prepare txn ~container:1)
      then begin
        let tid = Occ.Commit.compute_tid txn ~epoch:1 in
        Occ.Commit.install txn ~container:0 ~tid;
        Occ.Commit.install txn ~container:1 ~tid
      end))

let bench_expr =
  let expr =
    Query.Expr.(col "v" >. vint 10 &&. (col "k" <. vint 900))
  in
  let pred = Query.Expr.compile_pred kv_schema expr in
  let row = [| Util.Value.Int 5; Util.Value.Int 50 |] in
  Test.make ~name:"compiled predicate eval" (Staged.stage (fun () -> ignore (pred row)))

let bench_sim_events =
  Test.make ~name:"sim 10k events" (Staged.stage (fun () ->
      let e = Sim.Engine.create () in
      Sim.Engine.spawn e (fun () ->
          for _ = 1 to 10_000 do
            Sim.Engine.delay 1.
          done);
      ignore (Sim.Engine.run e)))

let bench_zipf =
  let rng = Util.Rng.create 1 in
  let g = Util.Rng.Zipf.create ~n:100_000 ~theta:0.99 in
  Test.make ~name:"zipf sample" (Staged.stage (fun () -> ignore (Util.Rng.Zipf.next rng g)))

let all_tests =
  [ bench_btree_insert; bench_btree_lookup; bench_btree_range;
    bench_occ_commit; bench_commit_read_heavy; bench_commit_write_heavy;
    bench_commit_2pc; bench_expr; bench_sim_events; bench_zipf ]

let run () =
  print_endline "\n== Micro-benchmarks (real time, Bechamel) ==";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          instance results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        ols)
    all_tests
