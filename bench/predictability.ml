(* Predictability report: phase-level lifecycle tracing vs the cost model.

   Runs the smallbank multi-transfer workload through the simulator under
   the paper's four deployment strategies (shared-everything ± affinity,
   shared-nothing with the fully-sync and opt formulations), with an
   [Obs.Collector] attached, and emits `BENCH_predictability.json`:
   per-deployment phase breakdowns (virtual µs) side by side with the
   §2.4 cost-model prediction calibrated fig6-style from a size-1 run on
   the same deployment.

   Two hard gates (non-zero exit on failure):

   - phase-partition: every attempt's phase durations must sum to its
     end-to-end latency within 1% (worst case per deployment, as tracked
     by [Obs.Report.r_max_sum_dev_pct]);
   - no-op-sink overhead: re-running the direct commit-path scenarios
     (see commitpath.ml) with tracing compiled in but no collector
     attached must stay within 3% of the committed
     `BENCH_commit_path.json` baseline (best of 3 runs, ops/sec).

   Usage:
     dune exec bench/predictability.exe                   full run
     dune exec bench/predictability.exe -- --fast         shrunken (smoke)
     dune exec bench/predictability.exe -- --out F.json
     dune exec bench/predictability.exe -- --baseline B.json *)

module SB = Workloads.Smallbank
module J = Obs.Json

let n_groups = 7
let group_size = 8
let n_cust = n_groups * group_size
let txn_size = 4

let cust g k = SB.customer_name ((g * group_size) + k)

let groups =
  List.init n_groups (fun g -> List.init group_size (fun k -> cust g k))

let customers = List.concat groups

(* Destinations for a transfer of [txn_size], each on a different group. *)
let dests = List.init txn_size (fun i -> cust ((i + 1) mod n_groups) 1)

type deployment = {
  dp_name : string;
  dp_config : unit -> Reactdb.Config.t;
  dp_form : SB.formulation;
}

let deployments =
  [
    { dp_name = "shared-everything";
      dp_config =
        (fun () ->
          Reactdb.Config.shared_everything ~executors:n_groups ~affinity:false
            customers);
      dp_form = SB.Fully_sync };
    { dp_name = "shared-everything-affinity";
      dp_config =
        (fun () ->
          Reactdb.Config.shared_everything ~executors:n_groups ~affinity:true
            customers);
      dp_form = SB.Fully_sync };
    { dp_name = "shared-nothing-sync";
      dp_config = (fun () -> Reactdb.Config.shared_nothing groups);
      dp_form = SB.Fully_sync };
    { dp_name = "shared-nothing-async";
      dp_config = (fun () -> Reactdb.Config.shared_nothing groups);
      dp_form = SB.Opt };
    (* The morphed deployment: the config's Parallel morph selects the
       collect fan-out formulation (Smallbank.formulation_for), so the
       same request stream runs parallel purely by deployment choice. *)
    { dp_name = "shared-nothing-async-collect";
      dp_config = (fun () -> Reactdb.Config.shared_nothing_async groups);
      dp_form = SB.Collect };
  ]

(* One measured run with a collector attached; returns the report and the
   mean Figure-6 breakdown of committed transactions. *)
let run_measured ~n config form =
  let db = Harness.build (SB.decl ~customers:n_cust ()) config in
  let collector =
    Obs.Collector.create ~clock:Obs.Virtual
      ~containers:(Reactdb.Config.n_containers config)
      ()
  in
  Reactdb.Database.attach_obs db collector;
  let outs =
    Harness.measure_txns db ~n (fun _rng ->
        SB.multi_transfer_request form ~src:(cust 0 0) ~dests ~amount:1.)
  in
  (Obs.Report.summarize collector, Harness.mean_breakdown outs)

(* Cost-model prediction, calibrated as in Figure 6 (§4.2.2): cs/cr and
   per-hop processing come from a fully-sync size-1 run on the same
   deployment; the commit+input-gen bucket, which the Figure 3 equation
   excludes, is added back from the measured breakdown. *)
let predict ~n_calib config form overhead_us =
  let db = Harness.build (SB.decl ~customers:n_cust ()) config in
  let outs =
    Harness.measure_txns db ~n:n_calib (fun _rng ->
        SB.multi_transfer_request SB.Fully_sync ~src:(cust 0 0)
          ~dests:[ cust 1 1 ] ~amount:1.)
  in
  let bd1 = Harness.mean_breakdown outs in
  let costs =
    Costmodel.uniform_costs ~cs:bd1.Harness.avg_cs ~cr:bd1.Harness.avg_cr
  in
  let p_total = bd1.Harness.avg_sync_exec in
  let p_credit = p_total /. 2. in
  let tree =
    match form with
    | SB.Opt | SB.Collect ->
      Costmodel.node ~at:0 ~p_ovp:p_credit
        ~async:
          (List.init txn_size (fun i -> Costmodel.leaf ~at:(i + 1) p_credit))
        ()
    | _ ->
      Costmodel.node ~at:0
        ~p_seq:(float_of_int txn_size *. (p_total -. p_credit))
        ~sync_seq:
          (List.init txn_size (fun i -> Costmodel.leaf ~at:(i + 1) p_credit))
        ()
  in
  Costmodel.latency costs tree +. overhead_us

(* ---- no-op-sink overhead gate ---- *)

type overhead_row = {
  ov_name : string;
  ov_base_ops : float;
  ov_now_ops : float;
  ov_base_p50 : float;
  ov_now_p50 : float;
  ov_pct : float;
}

let baseline_scenarios path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match J.of_string text with
  | Error e -> failwith (Printf.sprintf "%s: unparsable baseline: %s" path e)
  | Ok j -> (
    match J.member "scenarios" j with
    | Some (J.List l) ->
      List.filter_map
        (fun s ->
          match
            ( Option.bind (J.member "name" s) J.to_str,
              Option.bind (J.member "ops_per_sec" s) J.to_float,
              Option.bind (J.member "p50_us" s) J.to_float )
          with
          | Some n, Some ops, Some p50 -> Some (n, (ops, p50))
          | _ -> None)
        l
    | _ -> failwith (path ^ ": baseline has no \"scenarios\" list"))

(* Per scenario: best of 3 runs, and the better of the throughput and p50
   deltas. Wall-clock microbenchmarks on a shared machine are noisy in
   ways a constant per-transaction sink cost is not: a true sink
   regression depresses both the best-case throughput and the best-case
   median, while transient contention rarely spares either across three
   runs — so gating on the smaller delta rejects noise, not regressions. *)
let overhead_gate ~iters ~baseline =
  let base = baseline_scenarios baseline in
  let best_of_3 run =
    let one () =
      let r = run ~iters in
      (r.Commitpath.sr_ops_per_sec, r.Commitpath.sr_p50_us)
    in
    let (o1, p1), (o2, p2), (o3, p3) = (one (), one (), one ()) in
    (Stdlib.max o1 (Stdlib.max o2 o3), Stdlib.min p1 (Stdlib.min p2 p3))
  in
  List.filter_map
    (fun (name, run) ->
      match List.assoc_opt name base with
      | None ->
        Printf.printf "  (baseline has no %s scenario; skipped)\n" name;
        None
      | Some (base_ops, base_p50) ->
        let now_ops, now_p50 = best_of_3 run in
        let ops_pct = (base_ops -. now_ops) /. base_ops *. 100. in
        let p50_pct =
          if base_p50 <= 0. then 0.
          else (now_p50 -. base_p50) /. base_p50 *. 100.
        in
        let pct = Stdlib.max 0. (Stdlib.min ops_pct p50_pct) in
        Some
          { ov_name = name; ov_base_ops = base_ops; ov_now_ops = now_ops;
            ov_base_p50 = base_p50; ov_now_p50 = now_p50; ov_pct = pct })
    [
      ("read_heavy", fun ~iters -> Commitpath.read_heavy ~iters);
      ("write_heavy", fun ~iters -> Commitpath.write_heavy ~iters);
      ("cross_container_2pc", fun ~iters -> Commitpath.cross_2pc ~iters);
    ]

(* ---- output ---- *)

let deployment_json (d, report, measured_mean, predicted) =
  J.Obj
    [
      ("name", J.Str d.dp_name);
      ("formulation", J.Str (SB.formulation_name d.dp_form));
      ("txn_size", J.Num (float_of_int txn_size));
      ("measured_mean_us", J.Num measured_mean);
      ("predicted_us", J.Num predicted);
      ( "model_dev_pct",
        J.Num
          (if measured_mean = 0. then 0.
           else abs_float (predicted -. measured_mean) /. measured_mean *. 100.)
      );
      ("max_sum_dev_pct", J.Num report.Obs.Report.r_max_sum_dev_pct);
      ("report", Obs.Report.to_json report);
    ]

let overhead_json rows =
  J.Obj
    [
      ( "scenarios",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("name", J.Str r.ov_name);
                   ("baseline_ops_per_sec", J.Num r.ov_base_ops);
                   ("ops_per_sec", J.Num r.ov_now_ops);
                   ("baseline_p50_us", J.Num r.ov_base_p50);
                   ("p50_us", J.Num r.ov_now_p50);
                   ("overhead_pct", J.Num r.ov_pct);
                 ])
             rows) );
      ( "max_overhead_pct",
        J.Num (List.fold_left (fun a r -> Stdlib.max a r.ov_pct) 0. rows) );
    ]

let () =
  let fast = ref false in
  let out = ref "BENCH_predictability.json" in
  let baseline = ref "BENCH_commit_path.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let n = if !fast then 60 else 300 in
  let n_calib = if !fast then 20 else 60 in
  let iters = if !fast then 2_000 else 10_000 in
  Printf.printf "Predictability report (%d txns/deployment, virtual clock)\n%!"
    n;
  let rows =
    List.map
      (fun d ->
        let config = d.dp_config () in
        let report, bd = run_measured ~n config d.dp_form in
        let predicted =
          predict ~n_calib (d.dp_config ()) d.dp_form bd.Harness.avg_overhead
        in
        Printf.printf "\n== %s (%s, size %d) ==\n%s%!" d.dp_name
          (SB.formulation_name d.dp_form) txn_size
          (Obs.Report.to_table report);
        Printf.printf "cost model: measured %.1f us, predicted %.1f us\n%!"
          report.Obs.Report.r_mean_latency_us predicted;
        (d, report, report.Obs.Report.r_mean_latency_us, predicted))
      deployments
  in
  Printf.printf "\n== no-op-sink overhead vs %s ==\n%!" !baseline;
  let ov = overhead_gate ~iters ~baseline:!baseline in
  List.iter
    (fun r ->
      Printf.printf
        "  %-22s %9.0f ops/s (base %9.0f)  p50 %7.3f us (base %7.3f)  +%.2f%%\n"
        r.ov_name r.ov_now_ops r.ov_base_ops r.ov_now_p50 r.ov_base_p50
        r.ov_pct)
    ov;
  let sum_ok =
    List.for_all
      (fun (_, report, _, _) -> report.Obs.Report.r_max_sum_dev_pct <= 1.)
      rows
  in
  let ov_ok = List.for_all (fun r -> r.ov_pct <= 3.) ov in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "predictability");
        ("schema_version", J.Num (float_of_int Obs.Report.schema_version));
        ("clock", J.Str (Obs.clock_name Obs.Virtual));
        ("deployments", J.List (List.map deployment_json rows));
        ("overhead_gate", overhead_json ov);
        ( "gates",
          J.Obj [ ("sum_ok", J.Bool sum_ok); ("overhead_ok", J.Bool ov_ok) ] );
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  if not sum_ok then
    prerr_endline "FAIL: phase sums deviate from latency by more than 1%";
  if not ov_ok then
    prerr_endline "FAIL: no-op tracing sink overhead exceeds 3% on commit path";
  if not (sum_ok && ov_ok) then exit 1
