(* Intra-transaction parallelism sweep: sequential vs fan-out/collect
   formulations, morphed by the deployment (shared-nothing vs
   shared-nothing-async), at 1/2/4 containers on the simulator's virtual
   clock. Emits `BENCH_intra_txn.json`.

   Each row runs the Smallbank multi-transfer with the formulation the
   deployment's morph knob selects (Config.morph -> Smallbank.formulation_for),
   with an [Obs.Collector] attached and history recording enabled, next to
   the §2.4 cost-model prediction calibrated fig6-style from a size-1 run
   on the same deployment. A separate concurrent phase runs a multi-worker
   closed loop on the 4-container async deployment so the certified
   histories contain genuinely interleaved parallel schedules.

   Hard gates (non-zero exit on failure):

   - audits: money conservation on every run (sequential and concurrent);
   - serializability: `lib/histories` certifies every recorded history;
   - phase-partition: per-attempt phase sums within 1% of latency
     ([Obs.Report.r_max_sum_dev_pct], as in bench/predictability.exe);
   - speedup: at 4 containers the fan-out formulation must show >= 1.5x
     lower virtual latency than the sequential one, both measured and
     predicted.

   Usage:
     dune exec bench/intra_txn.exe                   full run
     dune exec bench/intra_txn.exe -- --fast         shrunken (smoke)
     dune exec bench/intra_txn.exe -- --out F.json *)

module SB = Workloads.Smallbank
module J = Obs.Json
module Config = Reactdb.Config
module DB = Reactdb.Database

let n_cust = 24
let txn_size = 4
let customers = SB.customers n_cust

(* Customer index j lives in group (j mod c): round-robin placement, so
   the same declaration spreads over 1, 2 or 4 containers. *)
let groups_for c =
  List.init c (fun g ->
      List.filteri (fun j _ -> j mod c = g) (List.init n_cust Fun.id))
  |> List.map (List.map SB.customer_name)

(* Fan-out destinations: [txn_size] customers dealt over the remote
   containers (1..c-1), so at c = 4 the fan-out spans three remote
   executors (one takes two sub-calls) and at c = 1 everything is local. *)
let dest_indices c =
  List.init txn_size (fun i ->
      if c = 1 then i + 1 else (1 + (i mod (c - 1))) + (c * (i / (c - 1))))

let dests c = List.map SB.customer_name (dest_indices c)
let src = SB.customer_name 0

let config_for ~containers morph =
  Config.with_morph (Config.shared_nothing (groups_for containers)) morph

(* --- audits --- *)

let expected_money = float_of_int n_cust *. 2. *. 10_000.

let money_audit db =
  let cats = List.map (DB.catalog_of db) customers in
  let got = SB.total_money cats in
  if Float.abs (got -. expected_money) < 1e-6 then Ok ()
  else
    Error
      (Printf.sprintf "money not conserved: expected %.1f, got %.1f"
         expected_money got)

let certify db =
  let entries =
    List.map
      (fun h ->
        {
          Histories.Certify.c_txn = h.DB.h_txn;
          c_tid = h.DB.h_tid;
          c_reads = h.DB.h_reads;
          c_writes = h.DB.h_writes;
        })
      (DB.history db)
  in
  (List.length entries, Histories.Certify.check entries)

(* --- measured run --- *)

type row = {
  rw_containers : int;
  rw_morph : Config.morph;
  rw_form : SB.formulation;
  rw_report : Obs.Report.t;
  rw_measured_us : float;
  rw_predicted_us : float;
  rw_history_len : int;
  rw_money : (unit, string) result;
  rw_cert : (int list, string) result;
}

let run_measured ~n ~containers morph =
  let config = config_for ~containers morph in
  let form = SB.formulation_for config in
  let db = Harness.build (SB.decl ~customers:n_cust ()) config in
  let collector =
    Obs.Collector.create ~clock:Obs.Virtual
      ~containers:(Config.n_containers config)
      ()
  in
  DB.attach_obs db collector;
  DB.enable_history db;
  let outs =
    Harness.measure_txns db ~n (fun _rng ->
        SB.multi_transfer_request form ~src ~dests:(dests containers)
          ~amount:1.)
  in
  let report = Obs.Report.summarize collector in
  let money = money_audit db in
  let hist_len, cert = certify db in
  (config, form, report, Harness.mean_breakdown outs, money, hist_len, cert)

(* Cost-model prediction, calibrated as in Figure 6 (§4.2.2) from a
   fully-sync size-1 run on the same deployment; the commit+input-gen
   bucket is added back from the measured breakdown. The fan-out tree's
   async children carry the destination containers, so the queueing term
   of [Costmodel.latency] models two sub-calls sharing one executor. *)
let predict ~n_calib ~containers morph form overhead_us =
  let config = config_for ~containers morph in
  let db = Harness.build (SB.decl ~customers:n_cust ()) config in
  let calib_dest = SB.customer_name (if containers = 1 then 1 else 1) in
  let outs =
    Harness.measure_txns db ~n:n_calib (fun _rng ->
        SB.multi_transfer_request SB.Fully_sync ~src ~dests:[ calib_dest ]
          ~amount:1.)
  in
  let bd1 = Harness.mean_breakdown outs in
  let costs =
    Costmodel.uniform_costs ~cs:bd1.Harness.avg_cs ~cr:bd1.Harness.avg_cr
  in
  let p_total = bd1.Harness.avg_sync_exec in
  let p_credit = p_total /. 2. in
  let dest_containers =
    List.map (fun j -> j mod containers) (dest_indices containers)
  in
  let tree =
    match form with
    | SB.Opt | SB.Collect ->
      (* Fan-out: one async credit per destination (placed on its actual
         container), the combined debit overlapped before the barrier. *)
      Costmodel.node ~at:0 ~p_ovp:p_credit
        ~async:(List.map (fun c -> Costmodel.leaf ~at:c p_credit) dest_containers)
        ()
    | SB.Fully_sync | SB.Partially_async | SB.Fully_async ->
      Costmodel.node ~at:0
        ~p_seq:(float_of_int txn_size *. (p_total -. p_credit))
        ~sync_seq:(List.map (fun c -> Costmodel.leaf ~at:c p_credit) dest_containers)
        ()
  in
  Costmodel.latency costs tree +. overhead_us

(* --- concurrent certification phase --- *)

(* Multi-worker closed loop on the parallel deployment: random fan-outs
   with distinct destinations (offset walk, never the source), so the
   recorded history interleaves parallel sub-calls across the domains. *)
let run_concurrent ~fast ~containers =
  let config = config_for ~containers Config.Parallel in
  let form = SB.formulation_for config in
  let db = Harness.build (SB.decl ~customers:n_cust ()) config in
  DB.enable_history db;
  let gen _w rng =
    let s = Util.Rng.int rng n_cust in
    let o = 1 + Util.Rng.int rng (n_cust - txn_size) in
    let dests =
      List.init txn_size (fun i ->
          SB.customer_name ((s + o + i) mod n_cust))
    in
    SB.multi_transfer_request form ~src:(SB.customer_name s) ~dests ~amount:1.
  in
  let spec =
    Harness.spec ~n_workers:4 ~max_retries:3
      ~epochs:(if fast then 6 else 20)
      gen
  in
  let res = Harness.run_load db spec in
  let money = money_audit db in
  let hist_len, cert = certify db in
  (res, money, hist_len, cert)

(* --- output --- *)

let row_json r =
  J.Obj
    [
      ("containers", J.Num (float_of_int r.rw_containers));
      ("morph", J.Str (Config.morph_name r.rw_morph));
      ("formulation", J.Str (SB.formulation_name r.rw_form));
      ("txn_size", J.Num (float_of_int txn_size));
      ("measured_mean_us", J.Num r.rw_measured_us);
      ("predicted_us", J.Num r.rw_predicted_us);
      ( "model_dev_pct",
        J.Num
          (if r.rw_measured_us = 0. then 0.
           else
             abs_float (r.rw_predicted_us -. r.rw_measured_us)
             /. r.rw_measured_us *. 100.) );
      ("max_sum_dev_pct", J.Num r.rw_report.Obs.Report.r_max_sum_dev_pct);
      ("history_len", J.Num (float_of_int r.rw_history_len));
      ("money_ok", J.Bool (Result.is_ok r.rw_money));
      ("serializable", J.Bool (Result.is_ok r.rw_cert));
      ("report", Obs.Report.to_json r.rw_report);
    ]

let () =
  let fast = ref false in
  let out = ref "BENCH_intra_txn.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let n = if !fast then 60 else 300 in
  let n_calib = if !fast then 20 else 60 in
  Printf.printf
    "Intra-transaction parallelism sweep (%d txns/row, virtual clock)\n%!" n;
  let rows =
    List.concat_map
      (fun containers ->
        List.map
          (fun morph ->
            let config, form, report, bd, money, hist_len, cert =
              run_measured ~n ~containers morph
            in
            ignore config;
            let predicted =
              predict ~n_calib ~containers morph form bd.Harness.avg_overhead
            in
            let measured = report.Obs.Report.r_mean_latency_us in
            Printf.printf
              "  %d containers  %-10s (%-10s)  measured %8.1f us  predicted %8.1f us  sumdev %.3f%%  %s %s\n%!"
              containers
              (Config.morph_name morph)
              (SB.formulation_name form)
              measured predicted report.Obs.Report.r_max_sum_dev_pct
              (match money with Ok () -> "money-ok" | Error _ -> "MONEY-FAIL")
              (match cert with Ok _ -> "serializable" | Error _ -> "NOT-SERIALIZABLE");
            { rw_containers = containers; rw_morph = morph; rw_form = form;
              rw_report = report; rw_measured_us = measured;
              rw_predicted_us = predicted; rw_history_len = hist_len;
              rw_money = money; rw_cert = cert })
          [ Config.Sequential; Config.Parallel ])
      [ 1; 2; 4 ]
  in
  let find c m =
    List.find (fun r -> r.rw_containers = c && r.rw_morph = m) rows
  in
  let speedups =
    List.map
      (fun c ->
        let s = find c Config.Sequential and p = find c Config.Parallel in
        let meas =
          if p.rw_measured_us <= 0. then 0.
          else s.rw_measured_us /. p.rw_measured_us
        in
        let pred =
          if p.rw_predicted_us <= 0. then 0.
          else s.rw_predicted_us /. p.rw_predicted_us
        in
        Printf.printf
          "  %d containers: fan-out speedup measured %.2fx, predicted %.2fx\n%!"
          c meas pred;
        (c, meas, pred))
      [ 1; 2; 4 ]
  in
  Printf.printf "\n== concurrent certification (4 containers, parallel) ==\n%!";
  let conc_res, conc_money, conc_hist, conc_cert =
    run_concurrent ~fast:!fast ~containers:4
  in
  Printf.printf
    "  committed %d aborted %d  history %d  %s %s\n%!" conc_res.Harness.committed
    conc_res.Harness.aborted conc_hist
    (match conc_money with Ok () -> "money-ok" | Error e -> "MONEY-FAIL: " ^ e)
    (match conc_cert with
    | Ok _ -> "serializable"
    | Error e -> "NOT-SERIALIZABLE: " ^ e);
  let _, meas4, pred4 =
    List.find (fun (c, _, _) -> c = 4) speedups
  in
  let sum_ok =
    List.for_all (fun r -> r.rw_report.Obs.Report.r_max_sum_dev_pct <= 1.) rows
  in
  let audit_ok =
    List.for_all (fun r -> Result.is_ok r.rw_money) rows
    && Result.is_ok conc_money
  in
  let cert_ok =
    List.for_all (fun r -> Result.is_ok r.rw_cert) rows
    && Result.is_ok conc_cert
    && conc_hist > 0
  in
  let speedup_ok = meas4 >= 1.5 && pred4 >= 1.5 in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "intra_txn");
        ("schema_version", J.Num (float_of_int Obs.Report.schema_version));
        ("clock", J.Str (Obs.clock_name Obs.Virtual));
        ("txn_size", J.Num (float_of_int txn_size));
        ("customers", J.Num (float_of_int n_cust));
        ("rows", J.List (List.map row_json rows));
        ( "speedups",
          J.List
            (List.map
               (fun (c, m, p) ->
                 J.Obj
                   [
                     ("containers", J.Num (float_of_int c));
                     ("measured", J.Num m);
                     ("predicted", J.Num p);
                   ])
               speedups) );
        ( "concurrent",
          J.Obj
            [
              ("containers", J.Num 4.);
              ("workers", J.Num 4.);
              ("committed", J.Num (float_of_int conc_res.Harness.committed));
              ("aborted", J.Num (float_of_int conc_res.Harness.aborted));
              ("history_len", J.Num (float_of_int conc_hist));
              ("money_ok", J.Bool (Result.is_ok conc_money));
              ("serializable", J.Bool (Result.is_ok conc_cert));
            ] );
        ( "gates",
          J.Obj
            [
              ("sum_ok", J.Bool sum_ok);
              ("audit_ok", J.Bool audit_ok);
              ("serializable_ok", J.Bool cert_ok);
              ("speedup_ok", J.Bool speedup_ok);
              ("measured_speedup_4c", J.Num meas4);
              ("predicted_speedup_4c", J.Num pred4);
            ] );
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  if not sum_ok then
    prerr_endline "FAIL: phase sums deviate from latency by more than 1%";
  if not audit_ok then prerr_endline "FAIL: money conservation audit";
  if not cert_ok then
    prerr_endline "FAIL: history certification (serializability)";
  if not speedup_ok then
    Printf.eprintf
      "FAIL: fan-out speedup at 4 containers below 1.5x (measured %.2fx, predicted %.2fx)\n"
      meas4 pred4;
  if not (sum_ok && audit_ok && cert_ok && speedup_ok) then exit 1
