(* Snapshot-read sweep: abort-free read-only transactions vs the OCC read
   path, on both backends. Emits `BENCH_snapshot.json`.

   Each row drives a zipf-skewed, money-conserving Smallbank mix over a
   4-container deployment: with probability [read_frac] a full-sweep
   [sum_all] read (root zipf-chosen, one balance sub-call per other
   customer — the read set spans every account, so OCC contention is
   maximal), otherwise a conserving writer (amalgamate / send_payment)
   rooted at a zipf-chosen customer. The sweep crosses

     backend in {sim, runtime} x theta in {0, 0.8, 0.99}
       x read_frac in {0.5, 0.9} x {snapshot, occ_baseline}

   where occ_baseline disables snapshots ([set_snapshots false]), so the
   same declared-read-only procedures fall back to ordinary OCC execution
   with validation and retries. Reads retry until committed (bounded);
   writers are single-attempt.

   Hard gates (non-zero exit on failure):

   - zero read-only aborts: in snapshot mode every read commits on its
     first attempt, carries a snapshot epoch, and the backend's read-only
     commit counter matches;
   - snapshot consistency audit: every committed sum_all observes exactly
     the loaded total (a frozen epoch is a consistent cut), and the final
     physical state conserves money;
   - phase partition: per-attempt phase sums within 1% of latency
     ([Obs.Report.r_max_sum_dev_pct]);
   - predictability win: at theta = 0.99 the snapshot read p99 is strictly
     below the OCC baseline read p99 at the same mix, per backend and
     read fraction (with the baseline actually committing reads).

   Usage:
     dune exec bench/snapshot.exe                   full run
     dune exec bench/snapshot.exe -- --fast         shrunken (smoke)
     dune exec bench/snapshot.exe -- --out F.json *)

open Util
module SB = Workloads.Smallbank
module W = Workloads
module J = Obs.Json
module Config = Reactdb.Config
module DB = Reactdb.Database
module RDb = Runtime.Db

let n_cust = 16
let n_containers = 4
let n_workers = 4
let max_attempts = 25
let customers = SB.customers n_cust
let expected_money = float_of_int (2 * n_cust) *. 10_000.

(* Customer j lives in group (j mod 4): round-robin placement. *)
let groups =
  List.init n_containers (fun g ->
      List.filteri (fun j _ -> j mod n_containers = g) (List.init n_cust Fun.id))
  |> List.map (List.map SB.customer_name)

let config = Config.shared_nothing groups

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let i = int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5) in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) i))
  end

let sum_all_req rng zipf =
  let root = Rng.Zipf.next rng zipf in
  W.Wl.request (SB.customer_name root) "sum_all"
    (List.filter_map
       (fun i ->
         if i = root then None else Some (W.Wl.vs (SB.customer_name i)))
       (List.init n_cust Fun.id))

let gen rng zipf ~read_frac =
  if Rng.float rng 1. < read_frac then (true, sum_all_req rng zipf)
  else (false, SB.gen_conserving_zipf rng ~zipf ~n:n_cust ~read_frac:0.)

(* Per-worker tally, merged after the run. [read] latencies are per logical
   read — the sum over its attempts until commit. *)
type tally = {
  mutable read_lats : float list;
  mutable write_lats : float list;
  mutable read_attempt_aborts : int;
  mutable reads_lost : int;  (* retry budget exhausted *)
  mutable writes_aborted : int;
  mutable missing_snapshot : int;  (* snapshot mode read committed without an epoch *)
  mutable audit_bad : int;  (* committed sum_all saw an unconserved total *)
}

let fresh_tally () =
  { read_lats = []; write_lats = []; read_attempt_aborts = 0; reads_lost = 0;
    writes_aborted = 0; missing_snapshot = 0; audit_bad = 0 }

let merge ts =
  let acc = fresh_tally () in
  List.iter
    (fun t ->
      acc.read_lats <- t.read_lats @ acc.read_lats;
      acc.write_lats <- t.write_lats @ acc.write_lats;
      acc.read_attempt_aborts <- acc.read_attempt_aborts + t.read_attempt_aborts;
      acc.reads_lost <- acc.reads_lost + t.reads_lost;
      acc.writes_aborted <- acc.writes_aborted + t.writes_aborted;
      acc.missing_snapshot <- acc.missing_snapshot + t.missing_snapshot;
      acc.audit_bad <- acc.audit_bad + t.audit_bad)
    ts;
  acc

(* One logical operation against either backend; [exec] returns
   [(result, latency_us, snapshot)]. *)
let drive t ~snapshots ~is_read exec =
  if is_read then begin
    let lat = ref 0. and committed = ref false and attempts = ref 0 in
    while (not !committed) && !attempts < max_attempts do
      incr attempts;
      let result, latency, snap = exec () in
      lat := !lat +. latency;
      match result with
      | Ok v ->
        committed := true;
        if Float.abs (Value.to_number v -. expected_money) > 1e-6 then
          t.audit_bad <- t.audit_bad + 1;
        if snapshots && snap = None then
          t.missing_snapshot <- t.missing_snapshot + 1
      | Error _ -> t.read_attempt_aborts <- t.read_attempt_aborts + 1
    done;
    if !committed then t.read_lats <- !lat :: t.read_lats
    else t.reads_lost <- t.reads_lost + 1
  end
  else begin
    let result, latency, _ = exec () in
    match result with
    | Ok _ -> t.write_lats <- latency :: t.write_lats
    | Error _ -> t.writes_aborted <- t.writes_aborted + 1
  end

type row = {
  r_backend : string;
  r_theta : float;
  r_read_frac : float;
  r_mode : string;  (* "snapshot" | "occ_baseline" *)
  r_reads : int;
  r_writes : int;
  r_read_attempt_aborts : int;
  r_reads_lost : int;
  r_writes_aborted : int;
  r_ro_commits : int;
  r_read_p50 : float;
  r_read_p99 : float;
  r_write_p50 : float;
  r_write_p99 : float;
  r_sum_dev_pct : float;
  r_money_ok : bool;
  r_audit_bad : int;
  r_missing_snapshot : int;
  r_clock : string;
}

let finish ~backend ~theta ~read_frac ~snapshots ~ro_commits ~money tally
    report =
  let pct lats p =
    let a = Array.of_list lats in
    Array.sort Float.compare a;
    percentile a p
  in
  {
    r_backend = backend;
    r_theta = theta;
    r_read_frac = read_frac;
    r_mode = (if snapshots then "snapshot" else "occ_baseline");
    r_reads = List.length tally.read_lats;
    r_writes = List.length tally.write_lats;
    r_read_attempt_aborts = tally.read_attempt_aborts;
    r_reads_lost = tally.reads_lost;
    r_writes_aborted = tally.writes_aborted;
    r_ro_commits = ro_commits;
    r_read_p50 = pct tally.read_lats 50.;
    r_read_p99 = pct tally.read_lats 99.;
    r_write_p50 = pct tally.write_lats 50.;
    r_write_p99 = pct tally.write_lats 99.;
    r_sum_dev_pct = report.Obs.Report.r_max_sum_dev_pct;
    r_money_ok = Result.is_ok money;
    r_audit_bad = tally.audit_bad;
    r_missing_snapshot = tally.missing_snapshot;
    r_clock = report.Obs.Report.r_clock;
  }

let money_audit catalogs =
  let got = SB.total_money catalogs in
  if Float.abs (got -. expected_money) < 1e-6 then Ok ()
  else
    Error
      (Printf.sprintf "money not conserved: expected %.1f, got %.1f"
         expected_money got)

(* --- simulator backend: closed-loop workers as engine processes, virtual
   latencies --- *)

let run_sim ~ops_per_worker ~theta ~read_frac ~snapshots =
  let db = Harness.build (SB.decl ~customers:n_cust ()) config in
  let collector =
    Obs.Collector.create ~clock:Obs.Virtual ~containers:n_containers ()
  in
  DB.attach_obs db collector;
  DB.set_snapshots db snapshots;
  let eng = DB.engine db in
  let tallies =
    List.init n_workers (fun w ->
        let t = fresh_tally () in
        Sim.Engine.spawn eng (fun () ->
            let rng =
              Rng.create
                (1 + w + (1000 * int_of_float (theta *. 100.))
                + int_of_float (read_frac *. 10.)
                + if snapshots then 0 else 7)
            in
            let zipf = Rng.Zipf.create ~n:n_cust ~theta in
            for _ = 1 to ops_per_worker do
              let is_read, req = gen rng zipf ~read_frac in
              drive t ~snapshots ~is_read (fun () ->
                  let o =
                    DB.exec_txn db ~reactor:req.W.Wl.reactor
                      ~proc:req.W.Wl.proc ~args:req.W.Wl.args
                  in
                  (o.DB.result, o.DB.latency, o.DB.snapshot));
              Sim.Engine.delay (float_of_int (1 + Rng.int rng 5_000))
            done);
        t)
  in
  ignore (Sim.Engine.run eng);
  let money = money_audit (List.map (DB.catalog_of db) customers) in
  finish ~backend:"sim" ~theta ~read_frac ~snapshots
    ~ro_commits:(DB.n_readonly_commits db) ~money (merge tallies)
    (Obs.Report.summarize collector)

(* --- runtime backend: one client domain per worker, wall-clock
   latencies --- *)

let run_runtime ~ops_per_worker ~theta ~read_frac ~snapshots =
  let db = RDb.start (SB.decl ~customers:n_cust ()) config in
  let collector =
    Obs.Collector.create ~clock:Obs.Wall ~containers:(RDb.n_domains db) ()
  in
  RDb.attach_obs db collector;
  RDb.set_snapshots db snapshots;
  let doms =
    List.init n_workers (fun w ->
        Domain.spawn (fun () ->
            let t = fresh_tally () in
            let rng =
              Rng.create
                (101 + w + (1000 * int_of_float (theta *. 100.))
                + int_of_float (read_frac *. 10.)
                + if snapshots then 0 else 7)
            in
            let zipf = Rng.Zipf.create ~n:n_cust ~theta in
            for _ = 1 to ops_per_worker do
              let is_read, req = gen rng zipf ~read_frac in
              drive t ~snapshots ~is_read (fun () ->
                  let o =
                    RDb.exec_txn db ~reactor:req.W.Wl.reactor
                      ~proc:req.W.Wl.proc ~args:req.W.Wl.args
                  in
                  (o.RDb.result, o.RDb.latency_us, o.RDb.snapshot))
            done;
            t))
  in
  let tallies = List.map Domain.join doms in
  let ro_commits = RDb.n_readonly_commits db in
  RDb.shutdown db;
  if RDb.n_fatal db > 0 then failwith "snapshot bench: runtime fatal errors";
  let money = money_audit (List.map snd (RDb.catalogs db)) in
  finish ~backend:"runtime" ~theta ~read_frac ~snapshots ~ro_commits ~money
    (merge tallies)
    (Obs.Report.summarize collector)

(* --- output + gates --- *)

let row_json r =
  J.Obj
    [
      ("backend", J.Str r.r_backend);
      ("theta", J.Num r.r_theta);
      ("read_frac", J.Num r.r_read_frac);
      ("mode", J.Str r.r_mode);
      ("reads_committed", J.Num (float_of_int r.r_reads));
      ("writes_committed", J.Num (float_of_int r.r_writes));
      ("read_attempt_aborts", J.Num (float_of_int r.r_read_attempt_aborts));
      ("reads_lost", J.Num (float_of_int r.r_reads_lost));
      ("writes_aborted", J.Num (float_of_int r.r_writes_aborted));
      ("readonly_commits", J.Num (float_of_int r.r_ro_commits));
      ("read_p50_us", J.Num r.r_read_p50);
      ("read_p99_us", J.Num r.r_read_p99);
      ("write_p50_us", J.Num r.r_write_p50);
      ("write_p99_us", J.Num r.r_write_p99);
      ("max_sum_dev_pct", J.Num r.r_sum_dev_pct);
      ("money_ok", J.Bool r.r_money_ok);
      ("audit_bad_reads", J.Num (float_of_int r.r_audit_bad));
      ("missing_snapshot", J.Num (float_of_int r.r_missing_snapshot));
      ("clock", J.Str r.r_clock);
    ]

let () =
  let fast = ref false in
  let out = ref "BENCH_snapshot.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let sim_ops = if !fast then 40 else 150 in
  let rt_ops = if !fast then 25 else 100 in
  let thetas = [ 0.0; 0.8; 0.99 ] in
  let fracs = [ 0.5; 0.9 ] in
  Printf.printf
    "Snapshot-read sweep: %d customers / %d containers, %d workers (%d sim + \
     %d runtime ops/worker per row)\n%!"
    n_cust n_containers n_workers sim_ops rt_ops;
  let rows = ref [] in
  List.iter
    (fun (_backend, run) ->
      List.iter
        (fun theta ->
          List.iter
            (fun read_frac ->
              List.iter
                (fun snapshots ->
                  let r = run ~theta ~read_frac ~snapshots in
                  Printf.printf
                    "  %-7s theta %.2f read %.1f %-12s  read p50 %9.1f p99 \
                     %9.1f us  ro-aborts %d  sumdev %.3f%%  %s\n%!"
                    r.r_backend r.r_theta r.r_read_frac r.r_mode r.r_read_p50
                    r.r_read_p99 r.r_read_attempt_aborts r.r_sum_dev_pct
                    (if r.r_money_ok && r.r_audit_bad = 0 then "audit-ok"
                     else "AUDIT-FAIL");
                  rows := r :: !rows)
                [ true; false ])
            fracs)
        thetas)
    [
      ("sim", fun ~theta ~read_frac ~snapshots ->
          run_sim ~ops_per_worker:sim_ops ~theta ~read_frac ~snapshots);
      ("runtime", fun ~theta ~read_frac ~snapshots ->
          run_runtime ~ops_per_worker:rt_ops ~theta ~read_frac ~snapshots);
    ];
  let rows = List.rev !rows in
  (* gates *)
  let snap_rows = List.filter (fun r -> r.r_mode = "snapshot") rows in
  let abort_free =
    List.for_all
      (fun r ->
        r.r_read_attempt_aborts = 0 && r.r_reads_lost = 0
        && r.r_missing_snapshot = 0
        && r.r_ro_commits >= r.r_reads)
      snap_rows
  in
  let audit_ok =
    List.for_all (fun r -> r.r_money_ok && r.r_audit_bad = 0) rows
  in
  let sum_ok = List.for_all (fun r -> r.r_sum_dev_pct <= 1.) rows in
  let find backend frac mode =
    List.find
      (fun r ->
        r.r_backend = backend && r.r_theta = 0.99 && r.r_read_frac = frac
        && r.r_mode = mode)
      rows
  in
  let contention =
    List.concat_map
      (fun backend ->
        List.map
          (fun frac ->
            let snap = find backend frac "snapshot" in
            let occ = find backend frac "occ_baseline" in
            let ok =
              occ.r_reads > 0 && snap.r_read_p99 < occ.r_read_p99
            in
            Printf.printf
              "  theta 0.99 %-7s read %.1f: snapshot p99 %9.1f vs occ p99 \
               %9.1f us  %s\n%!"
              backend frac snap.r_read_p99 occ.r_read_p99
              (if ok then "ok" else "FAIL");
            (backend, frac, snap.r_read_p99, occ.r_read_p99, ok))
          fracs)
      [ "sim"; "runtime" ]
  in
  let contention_ok = List.for_all (fun (_, _, _, _, ok) -> ok) contention in
  let doc =
    J.Obj
      [
        ("benchmark", J.Str "snapshot");
        ("schema_version", J.Num (float_of_int Obs.Report.schema_version));
        ("customers", J.Num (float_of_int n_cust));
        ("containers", J.Num (float_of_int n_containers));
        ("workers", J.Num (float_of_int n_workers));
        ("rows", J.List (List.map row_json rows));
        ( "contention_p99",
          J.List
            (List.map
               (fun (backend, frac, sp, op, ok) ->
                 J.Obj
                   [
                     ("backend", J.Str backend);
                     ("read_frac", J.Num frac);
                     ("snapshot_p99_us", J.Num sp);
                     ("occ_p99_us", J.Num op);
                     ("ok", J.Bool ok);
                   ])
               contention) );
        ( "gates",
          J.Obj
            [
              ("abort_free_ok", J.Bool abort_free);
              ("audit_ok", J.Bool audit_ok);
              ("sum_ok", J.Bool sum_ok);
              ("contention_p99_ok", J.Bool contention_ok);
            ] );
      ]
  in
  let oc = open_out !out in
  output_string oc (J.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  if not abort_free then
    prerr_endline "FAIL: read-only transactions aborted or lost snapshots";
  if not audit_ok then
    prerr_endline "FAIL: snapshot consistency / money conservation audit";
  if not sum_ok then
    prerr_endline "FAIL: phase sums deviate from latency by more than 1%";
  if not contention_ok then
    prerr_endline
      "FAIL: snapshot read p99 not below OCC baseline at theta 0.99";
  if not (abort_free && audit_ok && sum_ok && contention_ok) then exit 1
