(* Parallel-runtime scaling bench: throughput vs number of domains for the
   real-parallel shared-nothing backend (lib/runtime), Smallbank and YCSB,
   affinity vs round-robin ingress routing.

   Every run is gated on the equivalence audit: no internal errors, exact
   money conservation (Smallbank, conserving mix), one row per key reactor
   (YCSB), and a full secondary-index audit. A failed audit makes the
   process exit non-zero — the numbers are only meaningful if the parallel
   execution was correct.

   Throughput scaling across domains requires as many physical cores; the
   emitted JSON records the host's available parallelism
   (`recommended_domains`) so a reader can tell a runtime limitation from a
   hardware one.

   Usage:
     dune exec bench/parallel_scaling.exe                  full run
     dune exec bench/parallel_scaling.exe -- --fast        shrunken run
     dune exec bench/parallel_scaling.exe -- --out F.json  write elsewhere *)

module RDb = Runtime.Db
module SB = Workloads.Smallbank

type row = {
  rw_workload : string;
  rw_router : string;
  rw_domains : int;
  rw_workers : int;
  rw_throughput : float;
  rw_p50 : float;
  rw_p95 : float;
  rw_p99 : float;
  rw_abort_rate : float;
  rw_committed : int;
  rw_util_mean : float;
  rw_audit : (unit, string) result;
}

(* Deal [xs] round-robin into [k] groups (shared-nothing placement). *)
let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

let router_name = function
  | Reactdb.Config.Affinity -> "affinity"
  | Reactdb.Config.Round_robin -> "round-robin"
  | Reactdb.Config.Cost -> "cost"

(* Same placement for all routers — only the ingress policy differs. *)
let make_config router groups =
  match router with
  | Reactdb.Config.Affinity -> Reactdb.Config.shared_nothing groups
  | (Reactdb.Config.Round_robin | Reactdb.Config.Cost) as router ->
    let placement = Hashtbl.create 256 in
    List.iteri
      (fun ci names -> List.iter (fun nm -> Hashtbl.add placement nm ci) names)
      groups;
    Reactdb.Config.custom
      ~executors_per_container:(Array.make (List.length groups) 1)
      ~router
      ~placement:(Hashtbl.find placement) ()

let secondaries_audit db =
  match Faultsim.check_secondaries (RDb.catalogs db) with
  | Ok () -> Ok ()
  | Error m -> Error ("secondary-index audit: " ^ m)

let fatal_audit db =
  if RDb.n_fatal db = 0 then Ok ()
  else
    Error
      (Printf.sprintf "%d internal errors (first: %s)" (RDb.n_fatal db)
         (match RDb.fatal_messages db with m :: _ -> m | [] -> "?"))

let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e

type workload = Smallbank of int | Ycsb of int

let workload_name = function
  | Smallbank _ -> "smallbank-conserving"
  | Ycsb _ -> "ycsb-multi-update"

let run_scenario ~wl ~router ~d ~workers ~warmup_s ~measure_s =
  let decl, names =
    match wl with
    | Smallbank n -> (SB.decl ~customers:n (), SB.customers n)
    | Ycsb n -> (Workloads.Ycsb.decl ~keys:n (), Workloads.Ycsb.keys n)
  in
  let cfg = make_config router (chunk d names) in
  let db = RDb.start decl cfg in
  let gen =
    match wl with
    | Smallbank n -> fun _ rng -> SB.gen_conserving rng ~n
    | Ycsb n ->
      let p = Workloads.Ycsb.params ~txn_keys:10 ~theta:0.5 n in
      fun _ rng ->
        Workloads.Ycsb.gen_multi_update rng p
          ~container_of:(RDb.container_of db)
  in
  let s = RDb.Load.spec ~warmup_s ~measure_s ~seed:42 ~n_workers:workers gen in
  let r = RDb.Load.run db s in
  RDb.shutdown db;
  let invariant_audit () =
    match wl with
    | Smallbank n ->
      let expected = float_of_int n *. 2. *. 10_000. in
      let got = SB.total_money (List.map snd (RDb.catalogs db)) in
      if Float.abs (got -. expected) < 1e-6 then Ok ()
      else
        Error
          (Printf.sprintf "money not conserved: expected %.1f, got %.1f"
             expected got)
    | Ycsb _ ->
      if
        List.for_all
          (fun (_, _, rows) -> List.length rows = 1)
          (Faultsim.snapshot (RDb.catalogs db))
      then Ok ()
      else Error "YCSB key reactor lost or duplicated its row"
  in
  let audit =
    fatal_audit db >>= invariant_audit >>= fun () -> secondaries_audit db
  in
  let um =
    let u = r.RDb.Load.utilizations in
    if Array.length u = 0 then 0.
    else Array.fold_left ( +. ) 0. u /. float_of_int (Array.length u)
  in
  {
    rw_workload = workload_name wl;
    rw_router = router_name router;
    rw_domains = d;
    rw_workers = workers;
    rw_throughput = r.RDb.Load.throughput;
    rw_p50 = r.RDb.Load.p50_us;
    rw_p95 = r.RDb.Load.p95_us;
    rw_p99 = r.RDb.Load.p99_us;
    rw_abort_rate = r.RDb.Load.abort_rate;
    rw_committed = r.RDb.Load.committed;
    rw_util_mean = um;
    rw_audit = audit;
  }

(* Speedup relative to the same workload+router at 1 domain. *)
let speedup rows r =
  match
    List.find_opt
      (fun b ->
        b.rw_workload = r.rw_workload && b.rw_router = r.rw_router
        && b.rw_domains = 1)
      rows
  with
  | Some b when b.rw_throughput > 0. -> r.rw_throughput /. b.rw_throughput
  | _ -> 1.

let emit_json path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"parallel_scaling\",\n";
  Printf.fprintf oc "  \"host\": {\"recommended_domains\": %d},\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc
    "  \"note\": \"throughput scaling across domains requires as many \
     physical cores as domains; on a host with recommended_domains < 4 the \
     4-domain numbers measure correctness and overhead, not speedup\",\n";
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"workload\": %S, \"router\": %S, \"domains\": %d, \"workers\": \
         %d, \"throughput\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, \
         \"p99_us\": %.1f, \"abort_rate\": %.4f, \"committed\": %d, \
         \"util_mean\": %.3f, \"speedup_vs_1\": %.3f, \"audit\": %S}%s\n"
        r.rw_workload r.rw_router r.rw_domains r.rw_workers r.rw_throughput
        r.rw_p50 r.rw_p95 r.rw_p99 r.rw_abort_rate r.rw_committed
        r.rw_util_mean (speedup rows r)
        (match r.rw_audit with Ok () -> "ok" | Error m -> m)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let () =
  let fast = ref false in
  let out = ref "BENCH_parallel_scaling.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let domains = if !fast then [ 1; 2 ] else [ 1; 2; 4 ] in
  let workers = 16 in
  let warmup_s = if !fast then 0.1 else 0.5 in
  let measure_s = if !fast then 0.4 else 2.0 in
  let workloads =
    [ Smallbank (if !fast then 128 else 1024); Ycsb (if !fast then 128 else 512) ]
  in
  Printf.printf
    "Parallel scaling (%d workers, %.1fs measure, host recommends %d domains)\n%!"
    workers measure_s
    (Domain.recommended_domain_count ());
  let rows =
    List.concat_map
      (fun wl ->
        List.concat_map
          (fun router ->
            List.map
              (fun d ->
                let r =
                  run_scenario ~wl ~router ~d ~workers ~warmup_s ~measure_s
                in
                Printf.printf
                  "  %-20s %-12s %d domains: %9.0f txn/s  p50 %7.1fus  p99 \
                   %8.1fus  aborts %5.2f%%  util %4.2f  [%s]\n%!"
                  r.rw_workload r.rw_router d r.rw_throughput r.rw_p50 r.rw_p99
                  (100. *. r.rw_abort_rate) r.rw_util_mean
                  (match r.rw_audit with Ok () -> "audit ok" | Error _ -> "AUDIT FAILED");
                r)
              domains)
          [ Reactdb.Config.Affinity; Reactdb.Config.Round_robin ])
      workloads
  in
  emit_json !out rows;
  Printf.printf "wrote %s\n" !out;
  let failures =
    List.filter_map
      (fun r ->
        match r.rw_audit with
        | Ok () -> None
        | Error m ->
          Some
            (Printf.sprintf "%s/%s/%d domains: %s" r.rw_workload r.rw_router
               r.rw_domains m))
      rows
  in
  if failures <> [] then begin
    List.iter (Printf.eprintf "AUDIT FAILURE: %s\n") failures;
    exit 1
  end
