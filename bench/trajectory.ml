(* Commit-path trajectory runner.

   Runs the fixed commit-path scenario set (see commitpath.ml) and emits
   `BENCH_commit_path.json` so that every PR has a perf baseline to diff
   against.

   Usage:
     dune exec bench/trajectory.exe                  full run
     dune exec bench/trajectory.exe -- --fast        shrunken run (smoke)
     dune exec bench/trajectory.exe -- --out F.json  write JSON elsewhere *)

let () =
  let fast = ref false in
  let out = ref "BENCH_commit_path.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let iters = if !fast then 2_000 else 20_000 in
  let sim_iters = if !fast then 150 else 800 in
  Printf.printf "Commit-path trajectory (%d direct iters, %d sim txns)\n%!"
    iters sim_iters;
  let results =
    [
      Commitpath.read_heavy ~iters;
      Commitpath.write_heavy ~iters;
      Commitpath.write_heavy_wal ~iters;
      Commitpath.write_heavy_group ~iters;
      Commitpath.cross_2pc ~iters;
      Commitpath.sim_smallbank ~iters:sim_iters;
      Commitpath.sim_readonly_snapshot ~iters:sim_iters;
    ]
  in
  Printf.printf "  %-22s %12s %10s %10s  %s\n" "scenario" "ops/sec" "p50_us"
    "p99_us" "latency";
  List.iter
    (fun r ->
      Printf.printf "  %-22s %12.0f %10.3f %10.3f  %s\n" r.Commitpath.sr_name
        r.Commitpath.sr_ops_per_sec r.Commitpath.sr_p50_us
        r.Commitpath.sr_p99_us r.Commitpath.sr_latency_kind)
    results;
  Commitpath.emit_json !out results;
  Printf.printf "wrote %s\n" !out
