(* Chaos-injection sweep: drives the overload-safe runtime through every
   fault class and gates the numbers on correctness audits.

   Scenarios:
   - matrix: Smallbank (conserving mix) and YCSB multi-update on 1 and 4
     domains under each runtime fault class (none, delivery-delay,
     domain-stall, prepare-stall), fixed transaction counts with retries.
   - deadline: Smallbank under heavy delivery delay with a tight
     per-transaction deadline — timeouts must occur and unwind cleanly.
   - fanout-delay: the multi-transfer fan-out/collect formulation on a
     shared-nothing-async deployment under seeded delivery delay — the
     parallel sub-calls of each root ship concurrently, so a delayed
     delivery must neither reorder any producer's FIFO nor drop a collect
     waker (checked by the accounting identity and quiescence).
   - overload: a saturating closed-loop run against a small --mailbox-cap;
     admission sheds must occur and p99 latency must stay bounded.
   - flush-stall: the simulator backend in durable group-commit mode with a
     stalling WAL flusher (virtual-time injection).
   - shipping: the durable simulator backend shipping its WAL to two
     replicas under seeded shipment faults (batches dropped in flight or
     delayed a round); replicas must still converge to the durable epoch
     with money conserved.

   Every scenario is gated: zero internal errors, exact money conservation
   (Smallbank) / one row per key reactor (YCSB), secondary-index audit,
   the attempt-accounting identity commits + aborts = logical + retries,
   and bounded wall-clock progress. Any violated audit makes the process
   exit non-zero — throughput under faults is only meaningful if the
   faulted execution was still correct.

   Usage:
     dune exec bench/chaos_sweep.exe                    full run
     dune exec bench/chaos_sweep.exe -- --fast          shrunken run
     dune exec bench/chaos_sweep.exe -- --seed N        fault schedule seed
     dune exec bench/chaos_sweep.exe -- --out F.json    write elsewhere *)

module RDb = Runtime.Db
module SDb = Reactdb.Database
module SB = Workloads.Smallbank

type row = {
  rw_scenario : string;  (** "matrix" | "deadline" | "overload" | "flush-stall" *)
  rw_workload : string;
  rw_fault : string;  (** Chaos kind name or "none" *)
  rw_domains : int;
  rw_committed : int;
  rw_aborted : int;
  rw_retries : int;
  rw_timeouts : int;
  rw_sheds : int;
  rw_injections : int;
  rw_p99_us : float;
  rw_elapsed_s : float;
  rw_audit : (unit, string) result;
}

let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e

let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

let count_reason reasons name =
  match List.assoc_opt name reasons with Some n -> n | None -> 0

(* --- audits (runtime backend) --- *)

let fatal_audit db =
  if RDb.n_fatal db = 0 then Ok ()
  else
    Error
      (Printf.sprintf "%d internal errors (first: %s)" (RDb.n_fatal db)
         (match RDb.fatal_messages db with m :: _ -> m | [] -> "?"))

let money_audit ~n cats =
  let expected = float_of_int n *. 2. *. 10_000. in
  let got = SB.total_money cats in
  if Float.abs (got -. expected) < 1e-6 then Ok ()
  else
    Error
      (Printf.sprintf "money not conserved: expected %.1f, got %.1f" expected
         got)

let ycsb_audit cats_named =
  if
    List.for_all
      (fun (_, _, rows) -> List.length rows = 1)
      (Faultsim.snapshot cats_named)
  then Ok ()
  else Error "YCSB key reactor lost or duplicated its row"

let accounting_audit ~committed ~aborted ~logical ~retries =
  if committed + aborted = logical + retries then Ok ()
  else
    Error
      (Printf.sprintf
         "attempt accounting: commits(%d) + aborts(%d) <> logical(%d) + \
          retries(%d)"
         committed aborted logical retries)

let bounded_audit ~elapsed_s ~ceiling_s =
  if elapsed_s < ceiling_s then Ok ()
  else
    Error
      (Printf.sprintf "wall-clock progress not bounded: %.1fs >= %.1fs ceiling"
         elapsed_s ceiling_s)

(* --- scenarios --- *)

type workload = Smallbank of int | Ycsb of int

let workload_name = function
  | Smallbank _ -> "smallbank-conserving"
  | Ycsb _ -> "ycsb-multi-update"

(* Fixed-count closed-loop run of one workload on [d] domains under one
   fault class, with transient-abort retries and default backoff. *)
let run_matrix ~seed ~fast ~wl ~d ~fault =
  let decl, names =
    match wl with
    | Smallbank n -> (SB.decl ~customers:n (), SB.customers n)
    | Ycsb n -> (Workloads.Ycsb.decl ~keys:n (), Workloads.Ycsb.keys n)
  in
  let cfg = Reactdb.Config.shared_nothing (chunk d names) in
  let chaos =
    match fault with
    | None -> Chaos.none
    | Some kind -> Chaos.make ~seed ~kind ~p:0.05 ~delay_us:1000. ()
  in
  let db = RDb.start ~chaos decl cfg in
  let gen =
    match wl with
    | Smallbank n -> fun _ rng -> SB.gen_conserving rng ~n
    | Ycsb n ->
      let p = Workloads.Ycsb.params ~txn_keys:10 ~theta:0.5 n in
      fun _ rng ->
        Workloads.Ycsb.gen_multi_update rng p
          ~container_of:(RDb.container_of db)
  in
  let n_workers = 8 and per_worker = if fast then 25 else 150 in
  let t0 = Unix.gettimeofday () in
  let retries =
    RDb.Load.run_fixed ~max_retries:3 db ~n_workers ~per_worker ~seed gen
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  RDb.shutdown db;
  let committed = RDb.n_committed db and aborted = RDb.n_aborted db in
  let reasons = RDb.aborts_by_reason db in
  let invariant_audit () =
    match wl with
    | Smallbank n -> money_audit ~n (List.map snd (RDb.catalogs db))
    | Ycsb _ -> ycsb_audit (RDb.catalogs db)
  in
  let audit =
    fatal_audit db >>= invariant_audit
    >>= (fun () ->
          accounting_audit ~committed ~aborted
            ~logical:(n_workers * per_worker) ~retries)
    >>= (fun () -> bounded_audit ~elapsed_s ~ceiling_s:120.)
    >>= fun () ->
    match Faultsim.check_secondaries (RDb.catalogs db) with
    | Ok () -> Ok ()
    | Error m -> Error ("secondary-index audit: " ^ m)
  in
  {
    rw_scenario = "matrix";
    rw_workload = workload_name wl;
    rw_fault =
      (match fault with None -> "none" | Some k -> Chaos.kind_name k);
    rw_domains = d;
    rw_committed = committed;
    rw_aborted = aborted;
    rw_retries = retries;
    rw_timeouts = count_reason reasons "timeout";
    rw_sheds = count_reason reasons "overloaded";
    rw_injections = Chaos.injections chaos;
    rw_p99_us = 0.;
    rw_elapsed_s = elapsed_s;
    rw_audit = audit;
  }

(* Tight per-transaction deadlines under heavy delivery delay: timeouts
   must fire, and a timed-out root must unwind cleanly (locks released,
   2PC participants aborted) — checked indirectly by money conservation
   and by the runtime staying fatal-free. *)
let run_deadline ~seed ~fast =
  let n = if fast then 64 else 256 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let chaos =
    Chaos.make ~seed ~kind:Chaos.Delay_delivery ~p:0.5 ~delay_us:5000. ()
  in
  let db = RDb.start ~chaos decl cfg in
  let n_workers = 8 and per_worker = if fast then 25 else 100 in
  let t0 = Unix.gettimeofday () in
  let retries =
    RDb.Load.run_fixed ~deadline_us:1000. db ~n_workers ~per_worker ~seed
      (fun _ rng -> SB.gen_conserving rng ~n)
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  RDb.shutdown db;
  let committed = RDb.n_committed db and aborted = RDb.n_aborted db in
  let reasons = RDb.aborts_by_reason db in
  let timeouts = count_reason reasons "timeout" in
  let audit =
    fatal_audit db
    >>= (fun () -> money_audit ~n (List.map snd (RDb.catalogs db)))
    >>= (fun () ->
          accounting_audit ~committed ~aborted
            ~logical:(n_workers * per_worker) ~retries)
    >>= fun () ->
    if timeouts > 0 then Ok ()
    else Error "expected deadline timeouts under 5ms delivery delay, saw none"
  in
  {
    rw_scenario = "deadline";
    rw_workload = "smallbank-conserving";
    rw_fault = "delivery-delay";
    rw_domains = 2;
    rw_committed = committed;
    rw_aborted = aborted;
    rw_retries = retries;
    rw_timeouts = timeouts;
    rw_sheds = count_reason reasons "overloaded";
    rw_injections = Chaos.injections chaos;
    rw_p99_us = 0.;
    rw_elapsed_s = elapsed_s;
    rw_audit = audit;
  }

(* Seeded delivery delay against the fan-out/collect formulation on a
   shared-nothing-async deployment (the morph knob selects Collect): each
   root has up to three sub-calls in flight at once, so a delayed delivery
   lands between concurrently outstanding futures. The audits require that
   every attempt still completes exactly once (no dropped collect waker),
   money is conserved (no partial fan-out commits), and the run quiesces
   within the ceiling (no producer FIFO wedged by reordering). *)
let run_fanout_delay ~seed ~fast =
  let n = if fast then 64 else 256 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing_async (chunk 4 (SB.customers n)) in
  let form = SB.formulation_for cfg in
  let chaos =
    Chaos.make ~seed ~kind:Chaos.Delay_delivery ~p:0.2 ~delay_us:2000. ()
  in
  let db = RDb.start ~chaos decl cfg in
  let gen _ rng =
    let src = Util.Rng.int rng n in
    let rec pick acc k =
      if k = 0 then List.rev acc
      else
        let d = Util.Rng.pick_except rng n src in
        if List.mem d acc then pick acc k else pick (d :: acc) (k - 1)
    in
    SB.multi_transfer_request form
      ~src:(SB.customer_name src)
      ~dests:(List.map SB.customer_name (pick [] 3))
      ~amount:1.
  in
  let n_workers = 8 and per_worker = if fast then 25 else 100 in
  let t0 = Unix.gettimeofday () in
  let retries =
    RDb.Load.run_fixed ~max_retries:3 db ~n_workers ~per_worker ~seed gen
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  RDb.shutdown db;
  let committed = RDb.n_committed db and aborted = RDb.n_aborted db in
  let reasons = RDb.aborts_by_reason db in
  let audit =
    fatal_audit db
    >>= (fun () -> money_audit ~n (List.map snd (RDb.catalogs db)))
    >>= (fun () ->
          accounting_audit ~committed ~aborted
            ~logical:(n_workers * per_worker) ~retries)
    >>= (fun () ->
          if committed > 0 then Ok ()
          else Error "no fan-out commits under delivery delay")
    >>= (fun () ->
          if Chaos.injections chaos > 0 then Ok ()
          else Error "delivery-delay injector never fired")
    >>= (fun () -> bounded_audit ~elapsed_s ~ceiling_s:120.)
    >>= fun () ->
    match Faultsim.check_secondaries (RDb.catalogs db) with
    | Ok () -> Ok ()
    | Error m -> Error ("secondary-index audit: " ^ m)
  in
  {
    rw_scenario = "fanout-delay";
    rw_workload = "smallbank-multi-transfer-" ^ SB.formulation_name form;
    rw_fault = "delivery-delay";
    rw_domains = 4;
    rw_committed = committed;
    rw_aborted = aborted;
    rw_retries = retries;
    rw_timeouts = count_reason reasons "timeout";
    rw_sheds = count_reason reasons "overloaded";
    rw_injections = Chaos.injections chaos;
    rw_p99_us = 0.;
    rw_elapsed_s = elapsed_s;
    rw_audit = audit;
  }

(* Saturating closed-loop run against a small admission cap: sheds must
   occur (backpressure is engaged) and committed-transaction p99 must stay
   bounded — shedding keeps the queues, hence the latencies, short. *)
let run_overload ~seed ~fast =
  let n = if fast then 64 else 256 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = RDb.start ~mailbox_cap:4 decl cfg in
  let s =
    RDb.Load.spec
      ~warmup_s:(if fast then 0.05 else 0.2)
      ~measure_s:(if fast then 0.3 else 1.0)
      ~seed ~n_workers:32
      (fun _ rng -> SB.gen_conserving rng ~n)
  in
  let t0 = Unix.gettimeofday () in
  let r = RDb.Load.run db s in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  RDb.shutdown db;
  let sheds = count_reason r.RDb.Load.aborts_by_reason "overloaded" in
  let p99_ceiling_us = 100_000. in
  let audit =
    fatal_audit db
    >>= (fun () -> money_audit ~n (List.map snd (RDb.catalogs db)))
    >>= (fun () ->
          if sheds > 0 then Ok ()
          else Error "expected admission sheds at mailbox_cap=4, saw none")
    >>= fun () ->
    if r.RDb.Load.p99_us < p99_ceiling_us then Ok ()
    else
      Error
        (Printf.sprintf "p99 not bounded under overload: %.0fus >= %.0fus"
           r.RDb.Load.p99_us p99_ceiling_us)
  in
  {
    rw_scenario = "overload";
    rw_workload = "smallbank-conserving";
    rw_fault = "none";
    rw_domains = 2;
    rw_committed = r.RDb.Load.committed;
    rw_aborted = r.RDb.Load.aborted;
    rw_retries = r.RDb.Load.retries;
    rw_timeouts = count_reason r.RDb.Load.aborts_by_reason "timeout";
    rw_sheds = sheds;
    rw_injections = 0;
    rw_p99_us = r.RDb.Load.p99_us;
    rw_elapsed_s = elapsed_s;
    rw_audit = audit;
  }

(* Simulator backend, durable group commit, stalling WAL flusher: the
   stall is charged as virtual delay inside the flusher, so every epoch's
   waiters feel it; commits must still conserve money and flushes must
   still happen. *)
let run_flush_stall ~seed ~fast =
  let n = if fast then 64 else 256 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = Harness.build decl cfg in
  let log = Wal.in_memory () in
  SDb.attach_wal ~durable:true db log;
  let chaos =
    Chaos.make ~seed ~kind:Chaos.Stall_flush ~p:0.5 ~delay_us:10_000. ()
  in
  SDb.attach_chaos db chaos;
  let s =
    Harness.spec
      ~epochs:(if fast then 5 else 15)
      ~epoch_us:20_000. ~warmup_epochs:1 ~seed ~n_workers:8
      (fun _ rng -> SB.gen_conserving rng ~n)
  in
  let t0 = Unix.gettimeofday () in
  let r = Harness.run_load db s in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let cats = List.map (fun nm -> SDb.catalog_of db nm) (SB.customers n) in
  let audit =
    money_audit ~n cats
    >>= (fun () ->
          if r.Harness.committed > 0 then Ok ()
          else Error "no commits under flush stall")
    >>= (fun () ->
          if r.Harness.log_flushes > 0 then Ok ()
          else Error "durable mode performed no group-commit flushes")
    >>= (fun () ->
          if Chaos.injections chaos > 0 then Ok ()
          else Error "flush-stall injector never fired")
    >>= fun () ->
    match SDb.wal_error db with
    | None -> Ok ()
    | Some m -> Error ("unexpected wal error: " ^ m)
  in
  {
    rw_scenario = "flush-stall";
    rw_workload = "smallbank-conserving";
    rw_fault = "flush-stall";
    rw_domains = 2;
    rw_committed = r.Harness.committed;
    rw_aborted = r.Harness.aborted;
    rw_retries = r.Harness.retries;
    rw_timeouts = 0;
    rw_sheds = 0;
    rw_injections = Chaos.injections chaos;
    rw_p99_us = r.Harness.p99_latency;
    rw_elapsed_s = elapsed_s;
    rw_audit = audit;
  }

(* Shipment faults against the log shipper: the simulator backend in
   durable mode ships its WAL to two replicas while a conserving mix
   runs, with a seeded probe dropping batches in flight (the replica's
   unchanged watermark re-requests them next round) or delaying them one
   round. Gated on the injector actually firing, both replicas
   converging to the durable epoch after the final hand-off, and money
   conserved on the replicated state. *)
let run_shipping ~seed ~fast ~kind =
  let n = if fast then 64 else 128 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = Harness.build decl cfg in
  let log = Wal.in_memory () in
  SDb.attach_wal ~durable:true db log;
  let chaos = Chaos.make ~seed ~kind ~p:0.4 () in
  let replicas = [ Replica.create ~id:0 decl; Replica.create ~id:1 decl ] in
  let sh =
    Replica.Shipper.create ~chaos
      ~entries:(fun () -> Wal.entries log)
      ~durable_epoch:(fun () -> SDb.durable_epoch db)
      ~gen:(fun () -> SDb.generation db)
      replicas
  in
  let txns = if fast then 150 else 400 in
  let rng = Util.Rng.create seed in
  let ok = ref 0 and err = ref 0 in
  let t0 = Unix.gettimeofday () in
  let eng = SDb.engine db in
  Sim.Engine.spawn eng (fun () ->
      for i = 1 to txns do
        let r = SB.gen_conserving rng ~n in
        (match
           (SDb.exec_txn db ~reactor:r.Workloads.Wl.reactor
              ~proc:r.Workloads.Wl.proc ~args:r.Workloads.Wl.args)
             .SDb.result
         with
        | Ok _ -> incr ok
        | Error _ -> incr err);
        if i mod 5 = 0 then Replica.Shipper.round sh
      done);
  ignore (Sim.Engine.run eng);
  Replica.Shipper.final_ship sh;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let durable = SDb.durable_epoch db in
  let audit =
    (if Chaos.injections chaos > 0 then Ok ()
     else Error "shipment-fault injector never fired")
    >>= (fun () ->
          if List.for_all (fun r -> Replica.watermark r = durable) replicas
          then Ok ()
          else Error "replicas did not converge to the durable epoch")
    >>= (fun () ->
          if
            List.for_all
              (fun r ->
                money_audit ~n (List.map snd (Replica.catalogs r)) = Ok ())
              replicas
          then Ok ()
          else Error "money not conserved on replicated state")
    >>= fun () ->
    List.fold_left
      (fun acc r ->
        acc >>= fun () -> Faultsim.check_secondaries (Replica.catalogs r))
      (Ok ()) replicas
  in
  {
    rw_scenario = "shipping";
    rw_workload = "smallbank-conserving";
    rw_fault = Chaos.kind_name kind;
    rw_domains = 2;
    rw_committed = !ok;
    rw_aborted = !err;
    rw_retries = 0;
    rw_timeouts = 0;
    rw_sheds = 0;
    rw_injections = Chaos.injections chaos;
    rw_p99_us = 0.;
    rw_elapsed_s = elapsed_s;
    rw_audit = audit;
  }

(* --- output --- *)

let emit_json path ~seed rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"chaos_sweep\",\n";
  Printf.fprintf oc "  \"seed\": %d,\n" seed;
  Printf.fprintf oc "  \"host\": {\"recommended_domains\": %d},\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"scenario\": %S, \"workload\": %S, \"fault\": %S, \
         \"domains\": %d, \"committed\": %d, \"aborted\": %d, \"retries\": \
         %d, \"timeouts\": %d, \"sheds\": %d, \"injections\": %d, \
         \"p99_us\": %.1f, \"elapsed_s\": %.2f, \"audit\": %S}%s\n"
        r.rw_scenario r.rw_workload r.rw_fault r.rw_domains r.rw_committed
        r.rw_aborted r.rw_retries r.rw_timeouts r.rw_sheds r.rw_injections
        r.rw_p99_us r.rw_elapsed_s
        (match r.rw_audit with Ok () -> "ok" | Error m -> m)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let () =
  let fast = ref false in
  let seed = ref 42 in
  let out = ref "BENCH_chaos.json" in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--seed" :: s :: rest ->
      seed := int_of_string s;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse (Array.to_list Sys.argv);
  let fast = !fast and seed = !seed in
  let faults =
    [
      None;
      Some Chaos.Delay_delivery;
      Some Chaos.Stall_domain;
      Some Chaos.Stall_prepare;
    ]
  in
  let workloads =
    [ Smallbank (if fast then 64 else 256); Ycsb (if fast then 64 else 128) ]
  in
  Printf.printf "Chaos sweep (seed %d, host recommends %d domains)\n%!" seed
    (Domain.recommended_domain_count ());
  let report r =
    Printf.printf
      "  %-11s %-20s %-14s %d domains: %5d ok %5d ab %4d retry %4d to %4d \
       shed %4d inj  %.1fs  [%s]\n%!"
      r.rw_scenario r.rw_workload r.rw_fault r.rw_domains r.rw_committed
      r.rw_aborted r.rw_retries r.rw_timeouts r.rw_sheds r.rw_injections
      r.rw_elapsed_s
      (match r.rw_audit with Ok () -> "audit ok" | Error _ -> "AUDIT FAILED");
    r
  in
  let matrix =
    List.concat_map
      (fun wl ->
        List.concat_map
          (fun d ->
            List.map
              (fun fault -> report (run_matrix ~seed ~fast ~wl ~d ~fault))
              faults)
          [ 1; 4 ])
      workloads
  in
  let deadline = report (run_deadline ~seed ~fast) in
  let fanout = report (run_fanout_delay ~seed ~fast) in
  let overload = report (run_overload ~seed ~fast) in
  let flush_stall = report (run_flush_stall ~seed ~fast) in
  let ship_drop =
    report (run_shipping ~seed ~fast ~kind:Chaos.Drop_shipment)
  in
  let ship_delay =
    report (run_shipping ~seed ~fast ~kind:Chaos.Delay_shipment)
  in
  let rows =
    matrix @ [ deadline; fanout; overload; flush_stall; ship_drop; ship_delay ]
  in
  emit_json !out ~seed rows;
  Printf.printf "wrote %s\n" !out;
  let failures =
    List.filter_map
      (fun r ->
        match r.rw_audit with
        | Ok () -> None
        | Error m ->
          Some
            (Printf.sprintf "%s/%s/%s/%d domains: %s" r.rw_scenario
               r.rw_workload r.rw_fault r.rw_domains m))
      rows
  in
  if failures <> [] then begin
    List.iter (Printf.eprintf "AUDIT FAILURE: %s\n") failures;
    exit 1
  end
